#include "mrt/compile/compile.hpp"

#include <cstring>

#include "mrt/obs/metrics.hpp"
#include "mrt/support/require.hpp"

namespace mrt {
namespace compile {

namespace {

// The cmp evaluator's fixed frame stack; nesting beyond this compiles to a
// TooDeep fallback (real algebras stack a handful of combinators).
constexpr int kMaxCmpDepth = 30;

std::uint64_t double_bits(double d) {
  if (d == 0.0) d = 0.0;  // canonicalize -0.0 so word equality is exact
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

const char* fallback_name(Fallback f) {
  switch (f) {
    case Fallback::None: return "none";
    case Fallback::OpaqueOrder: return "opaque_order";
    case Fallback::OpaqueFamily: return "opaque_family";
    case Fallback::ShapeMismatch: return "shape_mismatch";
    case Fallback::TableTooLarge: return "table_too_large";
    case Fallback::TooDeep: return "too_deep";
    case Fallback::TooWide: return "too_wide";
    case Fallback::BadLabel: return "bad_label";
    case Fallback::LexNoIdentity: return "lex_no_identity";
  }
  return "unknown";
}

// --- layout ----------------------------------------------------------------

int CompiledAlgebra::build_node(const OrderDesc& d) {
  using K = OrderDesc::K;
  const int idx = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  Node nd;
  nd.k = d.k;
  nd.lo = static_cast<std::uint16_t>(words_);
  switch (d.k) {
    case K::Opaque:
      fallback_ = Fallback::OpaqueOrder;
      return -1;
    case K::NatAsc:
    case K::NatDesc:
      nd.slot = static_cast<std::uint16_t>(words_++);
      nd.with_inf = d.with_inf;
      break;
    case K::UnitRealDesc:
      nd.slot = static_cast<std::uint16_t>(words_++);
      break;
    case K::ChainAsc:
    case K::ChainDesc:
    case K::Discrete:
    case K::Trivial:
    case K::SubsetBits:
      nd.slot = static_cast<std::uint16_t>(words_++);
      nd.n = d.n;
      break;
    case K::Table: {
      // ⊤-membership is a 64-bit mask, so finite tables cap at 64 elements.
      if (d.n < 1 || d.n > 64 ||
          d.leq.size() != static_cast<std::size_t>(d.n)) {
        fallback_ = Fallback::TableTooLarge;
        return -1;
      }
      nd.slot = static_cast<std::uint16_t>(words_++);
      nd.n = d.n;
      nd.aux = static_cast<std::uint32_t>(aux_.size());
      for (const auto& row : d.leq) {
        if (row.size() != static_cast<std::size_t>(d.n)) {
          fallback_ = Fallback::TableTooLarge;
          return -1;
        }
        for (std::uint8_t v : row) aux_.push_back(v != 0 ? 1 : 0);
      }
      for (int t = 0; t < d.n; ++t) {
        bool top = true;
        for (int j = 0; j < d.n; ++j) top = top && d.leq[static_cast<std::size_t>(j)][static_cast<std::size_t>(t)] != 0;
        if (top) nd.top_mask |= std::uint64_t{1} << t;
      }
      break;
    }
    case K::Lex:
    case K::Direct:
    case K::LexOmega: {
      if (d.kids.size() != 2) {
        fallback_ = Fallback::ShapeMismatch;
        return -1;
      }
      if (d.k == K::LexOmega) nd.slot = static_cast<std::uint16_t>(words_++);
      nodes_[static_cast<std::size_t>(idx)] = nd;
      const int k0 = build_node(d.kids[0]);
      if (k0 < 0) return -1;
      const int k1 = build_node(d.kids[1]);
      if (k1 < 0) return -1;
      nd.kid[0] = k0;
      nd.kid[1] = k1;
      break;
    }
    case K::AddTop: {
      if (d.kids.size() != 1) {
        fallback_ = Fallback::ShapeMismatch;
        return -1;
      }
      nd.slot = static_cast<std::uint16_t>(words_++);
      nodes_[static_cast<std::size_t>(idx)] = nd;
      const int k0 = build_node(d.kids[0]);
      if (k0 < 0) return -1;
      nd.kid[0] = k0;
      break;
    }
  }
  if (words_ > 0xFFFF) {
    fallback_ = Fallback::TooWide;
    return -1;
  }
  nd.hi = static_cast<std::uint16_t>(words_);
  nodes_[static_cast<std::size_t>(idx)] = nd;
  return idx;
}

// --- compare program -------------------------------------------------------

void CompiledAlgebra::emit_cmp(int node, int parent) {
  using K = OrderDesc::K;
  const Node nd = nodes_[static_cast<std::size_t>(node)];
  auto scalar = [&](CmpOp::K k) {
    CmpOp op;
    op.k = k;
    op.slot = nd.slot;
    cmp_ops_.push_back(op);
  };
  switch (nd.k) {
    case K::NatAsc:
    case K::ChainAsc:
      scalar(CmpOp::K::Asc);
      break;
    case K::NatDesc:
    case K::ChainDesc:
    case K::UnitRealDesc:  // non-negative doubles order like their bits
      scalar(CmpOp::K::Desc);
      break;
    case K::Discrete:
      scalar(CmpOp::K::Eq);
      break;
    case K::Trivial:
      scalar(CmpOp::K::True);
      break;
    case K::SubsetBits:
      scalar(CmpOp::K::Subset);
      break;
    case K::Table: {
      CmpOp op;
      op.k = CmpOp::K::Table;
      op.slot = nd.slot;
      op.a = nd.aux;
      op.b = static_cast<std::uint32_t>(nd.n);
      cmp_ops_.push_back(op);
      break;
    }
    // The ω guard of add_top / lex_omega behaves exactly like an ascending
    // scalar ahead of the inner components (ω strictly above everything,
    // inner words canonically zero under ω), so all three compile to lex
    // frames; nested lex flattens into the enclosing frame (first-diff is
    // associative), which is what makes the fast path cover deep stacks.
    case K::Lex:
    case K::AddTop:
    case K::LexOmega: {
      const bool wrap = parent != 1;
      const std::size_t begin = cmp_ops_.size();
      if (wrap) {
        CmpOp op;
        op.k = CmpOp::K::LexBegin;
        cmp_ops_.push_back(op);
      }
      if (nd.k != K::Lex) {
        CmpOp guard;
        guard.k = CmpOp::K::Asc;
        guard.slot = nd.slot;
        cmp_ops_.push_back(guard);
      }
      emit_cmp(nd.kid[0], 1);
      if (nd.kid[1] >= 0) emit_cmp(nd.kid[1], 1);
      if (wrap) {
        CmpOp end;
        end.k = CmpOp::K::End;
        cmp_ops_[begin].a = static_cast<std::uint32_t>(cmp_ops_.size());
        cmp_ops_.push_back(end);
      }
      break;
    }
    case K::Direct: {
      const bool wrap = parent != 2;
      const std::size_t begin = cmp_ops_.size();
      if (wrap) {
        CmpOp op;
        op.k = CmpOp::K::DirBegin;
        cmp_ops_.push_back(op);
      }
      emit_cmp(nd.kid[0], 2);
      emit_cmp(nd.kid[1], 2);
      if (wrap) {
        CmpOp end;
        end.k = CmpOp::K::End;
        cmp_ops_[begin].a = static_cast<std::uint32_t>(cmp_ops_.size());
        cmp_ops_.push_back(end);
      }
      break;
    }
    case K::Opaque:
      break;  // unreachable: build_node rejects Opaque
  }
}

Cmp CompiledAlgebra::compare(const std::uint64_t* a,
                             const std::uint64_t* b) const {
  if (fast_) {
    for (const FastCmp& f : fast_cmp_) {
      const std::uint64_t x = a[f.slot];
      const std::uint64_t y = b[f.slot];
      if (x != y) return ((x < y) != (f.desc != 0)) ? Cmp::Less : Cmp::Greater;
    }
    return Cmp::Equiv;
  }
  struct Frame {
    std::uint8_t dir, le, ge;
    std::uint32_t end;
  };
  Frame st[kMaxCmpDepth + 2];
  int sp = 0;
  const CmpOp* ops = cmp_ops_.data();
  std::size_t ip = 0;
  Cmp r = Cmp::Equiv;
  bool have = false;
  for (;;) {
    if (!have) {
      const CmpOp& op = ops[ip];
      switch (op.k) {
        case CmpOp::K::LexBegin:
          st[sp++] = Frame{0, 1, 1, op.a};
          ++ip;
          continue;
        case CmpOp::K::DirBegin:
          st[sp++] = Frame{1, 1, 1, op.a};
          ++ip;
          continue;
        case CmpOp::K::End: {
          const Frame f = st[--sp];
          r = !f.dir ? Cmp::Equiv
                     : (f.le ? (f.ge ? Cmp::Equiv : Cmp::Less)
                             : (f.ge ? Cmp::Greater : Cmp::Incomp));
          ++ip;
          break;
        }
        case CmpOp::K::Asc: {
          const std::uint64_t x = a[op.slot];
          const std::uint64_t y = b[op.slot];
          r = x == y ? Cmp::Equiv : (x < y ? Cmp::Less : Cmp::Greater);
          ++ip;
          break;
        }
        case CmpOp::K::Desc: {
          const std::uint64_t x = a[op.slot];
          const std::uint64_t y = b[op.slot];
          r = x == y ? Cmp::Equiv : (x < y ? Cmp::Greater : Cmp::Less);
          ++ip;
          break;
        }
        case CmpOp::K::Eq:
          r = a[op.slot] == b[op.slot] ? Cmp::Equiv : Cmp::Incomp;
          ++ip;
          break;
        case CmpOp::K::True:
          r = Cmp::Equiv;
          ++ip;
          break;
        case CmpOp::K::Subset: {
          const std::uint64_t x = a[op.slot];
          const std::uint64_t y = b[op.slot];
          if (x == y) {
            r = Cmp::Equiv;
          } else if ((x & y) == x) {
            r = Cmp::Less;
          } else if ((x & y) == y) {
            r = Cmp::Greater;
          } else {
            r = Cmp::Incomp;
          }
          ++ip;
          break;
        }
        case CmpOp::K::Table: {
          const std::uint64_t x = a[op.slot];
          const std::uint64_t y = b[op.slot];
          const std::uint64_t* m = aux_.data() + op.a;
          const bool le = m[x * op.b + y] != 0;
          const bool ge = m[y * op.b + x] != 0;
          r = le ? (ge ? Cmp::Equiv : Cmp::Less)
                 : (ge ? Cmp::Greater : Cmp::Incomp);
          ++ip;
          break;
        }
      }
      have = true;
    }
    // Deliver r into the enclosing frame (or out of the program).
    if (sp == 0) return r;
    Frame& f = st[sp - 1];
    if (!f.dir) {  // lex: first non-Equiv child decides
      if (r == Cmp::Equiv) {
        have = false;
        continue;
      }
      ip = f.end + 1;
      --sp;  // r propagates to the parent frame
    } else {  // direct: conjunction of directions, Incomp exits early
      f.le = f.le && (r == Cmp::Less || r == Cmp::Equiv);
      f.ge = f.ge && (r == Cmp::Greater || r == Cmp::Equiv);
      if (!f.le && !f.ge) {
        r = Cmp::Incomp;
        ip = f.end + 1;
        --sp;
      } else {
        have = false;
      }
    }
  }
}

// --- top programs ----------------------------------------------------------

void CompiledAlgebra::emit_top(int node, std::vector<TopOp>& out) const {
  using K = OrderDesc::K;
  const Node& nd = nodes_[static_cast<std::size_t>(node)];
  auto eq = [&](std::uint64_t imm) {
    TopOp op;
    op.k = TopOp::K::Eq;
    op.slot = nd.slot;
    op.imm = imm;
    out.push_back(op);
  };
  switch (nd.k) {
    case K::NatAsc:
      if (nd.with_inf) {
        eq(kInf);
      } else {
        out.push_back(TopOp{TopOp::K::Never, 0, 0});  // plain ℕ is unbounded
      }
      break;
    case K::NatDesc:
      eq(0);
      break;
    case K::UnitRealDesc:
      eq(0);  // bits(0.0) == 0
      break;
    case K::ChainAsc:
      eq(static_cast<std::uint64_t>(nd.n));
      break;
    case K::ChainDesc:
      eq(0);
      break;
    case K::Discrete:
      if (nd.n == 1) {
        eq(0);
      } else {
        out.push_back(TopOp{TopOp::K::Never, 0, 0});
      }
      break;
    case K::Trivial:
      break;  // every element is ⊤: empty conjunction
    case K::SubsetBits:
      eq((std::uint64_t{1} << nd.n) - 1);
      break;
    case K::Table: {
      TopOp op;
      op.k = TopOp::K::MaskBit;
      op.slot = nd.slot;
      op.imm = nd.top_mask;
      out.push_back(op);
      break;
    }
    case K::Lex:
    case K::Direct:
      emit_top(nd.kid[0], out);
      emit_top(nd.kid[1], out);
      break;
    case K::AddTop:
    case K::LexOmega:
      eq(1);  // ω is the unique top; inner tops are no longer maximal
      break;
    case K::Opaque:
      break;
  }
}

bool CompiledAlgebra::eval_top(const std::uint64_t* w, std::uint32_t off,
                               std::uint32_t len) const {
  const TopOp* ops = top_ops_.data() + off;
  for (std::uint32_t i = 0; i < len; ++i) {
    const TopOp& op = ops[i];
    switch (op.k) {
      case TopOp::K::Eq:
        if (w[op.slot] != op.imm) return false;
        break;
      case TopOp::K::Never:
        return false;
      case TopOp::K::MaskBit:
        if (((op.imm >> w[op.slot]) & 1) == 0) return false;
        break;
    }
  }
  return true;
}

bool CompiledAlgebra::is_top(const std::uint64_t* w) const {
  return eval_top(w, 0, root_top_len_);
}

// --- family alignment ------------------------------------------------------

bool CompiledAlgebra::align_family(const FamilyDesc& fd, int node, int* out) {
  using FK = FamilyDesc::K;
  using OK = OrderDesc::K;
  const Node nd = nodes_[static_cast<std::size_t>(node)];
  FamNode fn;
  fn.k = fd.k;
  fn.node = node;
  auto mismatch = [&]() {
    fallback_ = Fallback::ShapeMismatch;
    return false;
  };
  switch (fd.k) {
    case FK::Opaque:
      fallback_ = Fallback::OpaqueFamily;
      return false;
    case FK::Id:
    case FK::Const:
      break;  // valid on any node; Const encodes its label per arc
    case FK::AddConst:
    case FK::MinConst:
      if (nd.k != OK::NatAsc && nd.k != OK::NatDesc) return mismatch();
      break;
    case FK::MulConstReal:
      if (nd.k != OK::UnitRealDesc) return mismatch();
      break;
    case FK::ChainAdd:
      if ((nd.k != OK::ChainAsc && nd.k != OK::ChainDesc) || nd.n != fd.n)
        return mismatch();
      fn.n = fd.n;
      break;
    case FK::Table: {
      int carrier = -1;
      switch (nd.k) {
        case OK::ChainAsc:
        case OK::ChainDesc:
          carrier = nd.n + 1;  // chain {0..n} has n+1 elements
          break;
        case OK::Discrete:
        case OK::Trivial:
        case OK::Table:
          carrier = nd.n;
          break;
        default:
          return mismatch();
      }
      if (carrier != fd.n || fd.fns.empty()) return mismatch();
      fn.n = fd.n;
      fn.nlabels = fd.fns.size();
      fn.aux = static_cast<std::uint32_t>(aux_.size());
      for (const auto& row : fd.fns) {
        if (row.size() != static_cast<std::size_t>(fd.n)) return mismatch();
        for (int y : row) {
          if (y < 0 || y >= fd.n) return mismatch();
          aux_.push_back(static_cast<std::uint64_t>(y));
        }
      }
      break;
    }
    case FK::Pair: {
      if ((nd.k != OK::Lex && nd.k != OK::Direct) || fd.kids.size() != 2)
        return mismatch();
      const int idx = static_cast<int>(fnodes_.size());
      fnodes_.push_back(fn);
      int k0 = -1, k1 = -1;
      if (!align_family(fd.kids[0], nd.kid[0], &k0)) return false;
      if (!align_family(fd.kids[1], nd.kid[1], &k1)) return false;
      fnodes_[static_cast<std::size_t>(idx)].kid[0] = k0;
      fnodes_[static_cast<std::size_t>(idx)].kid[1] = k1;
      *out = idx;
      return true;
    }
    case FK::Union: {
      if (fd.kids.size() != 2) return mismatch();
      const int idx = static_cast<int>(fnodes_.size());
      fnodes_.push_back(fn);
      int k0 = -1, k1 = -1;  // both arms act on the same carrier
      if (!align_family(fd.kids[0], node, &k0)) return false;
      if (!align_family(fd.kids[1], node, &k1)) return false;
      fnodes_[static_cast<std::size_t>(idx)].kid[0] = k0;
      fnodes_[static_cast<std::size_t>(idx)].kid[1] = k1;
      *out = idx;
      return true;
    }
    case FK::AddTop: {
      if (nd.k != OK::AddTop || fd.kids.size() != 1) return mismatch();
      const int idx = static_cast<int>(fnodes_.size());
      fnodes_.push_back(fn);
      int k0 = -1;
      if (!align_family(fd.kids[0], nd.kid[0], &k0)) return false;
      fnodes_[static_cast<std::size_t>(idx)].kid[0] = k0;
      *out = idx;
      return true;
    }
    case FK::LexOmega: {
      if (nd.k != OK::LexOmega || fd.kids.size() != 1) return mismatch();
      const FamilyDesc& pair = fd.kids[0];
      if (pair.k != FK::Pair || pair.kids.size() != 2) return mismatch();
      const int idx = static_cast<int>(fnodes_.size());
      fnodes_.push_back(fn);
      int k0 = -1, k1 = -1;
      if (!align_family(pair.kids[0], nd.kid[0], &k0)) return false;
      if (!align_family(pair.kids[1], nd.kid[1], &k1)) return false;
      fnodes_[static_cast<std::size_t>(idx)].kid[0] = k0;
      fnodes_[static_cast<std::size_t>(idx)].kid[1] = k1;
      *out = idx;
      return true;
    }
  }
  *out = static_cast<int>(fnodes_.size());
  fnodes_.push_back(fn);
  return true;
}

// --- per-label apply programs ----------------------------------------------

bool CompiledAlgebra::emit_apply(int fi, const Value& label,
                                 std::vector<ApplyOp>& out) const {
  using FK = FamilyDesc::K;
  const FamNode& fn = fnodes_[static_cast<std::size_t>(fi)];
  const Node& nd = nodes_[static_cast<std::size_t>(fn.node)];
  auto push = [&](ApplyOp::K k, std::uint16_t slot, std::uint64_t imm,
                  std::uint32_t a = 0, std::uint32_t b = 0) {
    ApplyOp op;
    op.k = k;
    op.slot = slot;
    op.a = a;
    op.b = b;
    op.imm = imm;
    out.push_back(op);
  };
  switch (fn.k) {
    case FK::Id:
      return true;
    case FK::Const: {
      std::vector<std::uint64_t> tmp(static_cast<std::size_t>(words_), 0);
      if (!encode_node(label, fn.node, tmp.data())) return false;
      for (int s = nd.lo; s < nd.hi; ++s)
        push(ApplyOp::K::Set, static_cast<std::uint16_t>(s),
             tmp[static_cast<std::size_t>(s)]);
      return true;
    }
    case FK::AddConst: {
      if (label.is_inf()) {
        push(ApplyOp::K::Set, nd.slot, kInf);  // a + ∞ = ∞
        return true;
      }
      if (!label.is_int() || label.as_int() < 0) return false;
      push(ApplyOp::K::AddSat, nd.slot,
           static_cast<std::uint64_t>(label.as_int()));
      return true;
    }
    case FK::MinConst: {
      if (label.is_inf()) return true;  // min(a, ∞) = a
      if (!label.is_int() || label.as_int() < 0) return false;
      push(ApplyOp::K::MinWord, nd.slot,
           static_cast<std::uint64_t>(label.as_int()));
      return true;
    }
    case FK::MulConstReal: {
      if (label.kind() != Value::Kind::Real) return false;
      const double f = label.as_real();
      if (!(f > 0.0 && f <= 1.0)) return false;
      push(ApplyOp::K::MulReal, nd.slot, double_bits(f));
      return true;
    }
    case FK::ChainAdd: {
      if (!label.is_int() || label.as_int() < 0 || label.as_int() > fn.n)
        return false;
      push(ApplyOp::K::ChainAdd, nd.slot,
           static_cast<std::uint64_t>(label.as_int()),
           static_cast<std::uint32_t>(fn.n));
      return true;
    }
    case FK::Table: {
      if (!label.is_int() || label.as_int() < 0 ||
          static_cast<std::size_t>(label.as_int()) >= fn.nlabels)
        return false;
      push(ApplyOp::K::Table, nd.slot, 0,
           fn.aux + static_cast<std::uint32_t>(label.as_int()) *
                        static_cast<std::uint32_t>(fn.n));
      return true;
    }
    case FK::Pair: {
      if (!label.is_tuple() || label.as_tuple().size() != 2) return false;
      return emit_apply(fn.kid[0], label.first(), out) &&
             emit_apply(fn.kid[1], label.second(), out);
    }
    case FK::Union: {
      if (!label.is_tagged()) return false;
      if (label.tag() == 1) return emit_apply(fn.kid[0], label.untagged(), out);
      if (label.tag() == 2) return emit_apply(fn.kid[1], label.untagged(), out);
      return false;
    }
    case FK::AddTop: {
      std::vector<ApplyOp> inner;
      if (!emit_apply(fn.kid[0], label, inner)) return false;
      if (!inner.empty()) {
        push(ApplyOp::K::SkipIfGuard, nd.slot, 0,
             static_cast<std::uint32_t>(inner.size()));
        out.insert(out.end(), inner.begin(), inner.end());
      }
      return true;
    }
    case FK::LexOmega: {
      if (!label.is_tuple() || label.as_tuple().size() != 2) return false;
      std::vector<ApplyOp> inner;
      if (!emit_apply(fn.kid[0], label.first(), inner)) return false;
      if (!emit_apply(fn.kid[1], label.second(), inner)) return false;
      push(ApplyOp::K::SkipIfGuard, nd.slot, 0,
           static_cast<std::uint32_t>(inner.size()) + 1);
      out.insert(out.end(), inner.begin(), inner.end());
      // After the pair applies, collapse to ω if the S part reached ⊤.
      ApplyOp c;
      c.k = ApplyOp::K::CollapseIfTop;
      c.slot = nd.slot;
      c.a = nd.stop_off;
      c.b = nd.stop_len;
      c.imm = (static_cast<std::uint64_t>(nd.lo + 1) << 16) | nd.hi;
      out.push_back(c);
      return true;
    }
    case FK::Opaque:
      return false;
  }
  return false;
}

CompiledLabel CompiledAlgebra::compile_label(const Value& label) const {
  CompiledLabel cl;
  if (!ok()) return cl;
  cl.ok = emit_apply(fam_root_, label, cl.ops);
  if (!cl.ok) {
    cl.ops.clear();
    return cl;
  }
  // SIMD eligibility: every opcode lanewise arithmetic, no per-column
  // control flow (Table gathers, ω guards, collapses force the scalar
  // kernels — they would need per-lane program counters).
  cl.vec = true;
  for (const ApplyOp& op : cl.ops) {
    switch (op.k) {
      case ApplyOp::K::Set:
      case ApplyOp::K::AddSat:
      case ApplyOp::K::MinWord:
      case ApplyOp::K::MulReal:
      case ApplyOp::K::ChainAdd:
        break;
      default:
        cl.vec = false;
        break;
    }
    if (!cl.vec) break;
  }
  if (cl.vec && cl.ops.size() == static_cast<std::size_t>(words_)) {
    cl.dense = true;
    for (std::size_t k = 0; k < cl.ops.size(); ++k) {
      if (cl.ops[k].slot != k) {
        cl.dense = false;
        break;
      }
    }
  }
  return cl;
}

void CompiledAlgebra::run_apply(const ApplyOp* ops, std::size_t n,
                                std::uint64_t* w) const {
  for (std::size_t ip = 0; ip < n; ++ip) {
    const ApplyOp& op = ops[ip];
    switch (op.k) {
      case ApplyOp::K::Set:
        w[op.slot] = op.imm;
        break;
      case ApplyOp::K::AddSat:
        if (w[op.slot] != kInf) w[op.slot] += op.imm;
        break;
      case ApplyOp::K::MinWord:
        if (op.imm < w[op.slot]) w[op.slot] = op.imm;
        break;
      case ApplyOp::K::MulReal:
        w[op.slot] = double_bits(bits_double(w[op.slot]) * bits_double(op.imm));
        break;
      case ApplyOp::K::ChainAdd: {
        const std::uint64_t s = w[op.slot] + op.imm;
        w[op.slot] = s > op.a ? op.a : s;
        break;
      }
      case ApplyOp::K::Table:
        w[op.slot] = aux_[op.a + w[op.slot]];
        break;
      case ApplyOp::K::SkipIfGuard:
        if (w[op.slot] == 1) ip += op.a;
        break;
      case ApplyOp::K::CollapseIfTop:
        if (eval_top(w, op.a, op.b)) {
          const int lo = static_cast<int>((op.imm >> 16) & 0xFFFF);
          const int hi = static_cast<int>(op.imm & 0xFFFF);
          for (int s = lo; s < hi; ++s) w[s] = 0;
          w[op.slot] = 1;
        }
        break;
    }
  }
}

void CompiledAlgebra::run_apply_block(const ApplyOp* ops, std::size_t n,
                                      std::uint64_t* w, int ncols,
                                      std::uint64_t mask) const {
  MRT_REQUIRE(ncols >= 1 && ncols <= 64);
  const std::size_t stride = static_cast<std::size_t>(words_);
  // SkipIfGuard is per-column control flow: a column whose ω guard fired sits
  // out the next op.a opcodes while its block-mates keep executing, so each
  // column carries its own countdown instead of the scalar path's ip bump.
  // Columns outside `mask` are skipped entirely (their words are neither
  // read nor written), so a sparse visit pays only for the lanes it needs.
  std::uint32_t skip[64];
  for (int c = 0; c < ncols; ++c) skip[c] = 0;
  for (std::size_t ip = 0; ip < n; ++ip) {
    const ApplyOp& op = ops[ip];
    for (int c = 0; c < ncols; ++c) {
      if (((mask >> c) & 1u) == 0) continue;
      if (skip[c] > 0) {
        --skip[c];
        continue;
      }
      std::uint64_t* wc = w + static_cast<std::size_t>(c) * stride;
      switch (op.k) {
        case ApplyOp::K::Set:
          wc[op.slot] = op.imm;
          break;
        case ApplyOp::K::AddSat:
          if (wc[op.slot] != kInf) wc[op.slot] += op.imm;
          break;
        case ApplyOp::K::MinWord:
          if (op.imm < wc[op.slot]) wc[op.slot] = op.imm;
          break;
        case ApplyOp::K::MulReal:
          wc[op.slot] =
              double_bits(bits_double(wc[op.slot]) * bits_double(op.imm));
          break;
        case ApplyOp::K::ChainAdd: {
          const std::uint64_t s = wc[op.slot] + op.imm;
          wc[op.slot] = s > op.a ? op.a : s;
          break;
        }
        case ApplyOp::K::Table:
          wc[op.slot] = aux_[op.a + wc[op.slot]];
          break;
        case ApplyOp::K::SkipIfGuard:
          if (wc[op.slot] == 1) skip[c] = op.a;
          break;
        case ApplyOp::K::CollapseIfTop:
          if (eval_top(wc, op.a, op.b)) {
            const int lo = static_cast<int>((op.imm >> 16) & 0xFFFF);
            const int hi = static_cast<int>(op.imm & 0xFFFF);
            for (int s = lo; s < hi; ++s) wc[s] = 0;
            wc[op.slot] = 1;
          }
          break;
      }
    }
  }
}

namespace {
inline int lane_of(unsigned m) {
  int l = 0;
  while ((m & 1u) == 0) {
    m >>= 1;
    ++l;
  }
  return l;
}
}  // namespace

std::uint8_t CompiledAlgebra::select_block(const CompiledLabel& f,
                                           const std::uint64_t* src,
                                           std::uint64_t* best, int ncols,
                                           std::uint8_t need,
                                           std::uint8_t have) const {
  MRT_REQUIRE(ncols >= 1 && ncols <= 8);
  if (words_ == 1) {
    // Vertical-lane kernel for dense visits of vec-eligible programs; the
    // threshold keeps sparse visits on the scalar path, where per-lane
    // dispatch is cheaper than padding and blending 8 lanes. Both sides of
    // the threshold produce identical bytes, so it tunes speed only.
    if (fast_ && f.vec && simd::enabled() && __builtin_popcount(need) >= 3) {
      return simd::select_w1()(f.ops.data(), f.ops.size(), src, best, ncols,
                               need, have, fast_cmp_[0]);
    }
    // Single-word carriers — the common batched case. Lanes are one word
    // apart; each needed lane runs the scalar opcode path on a stack word.
    // (Measured: for the short label programs that compile to one or two
    // opcodes, per-lane scalar dispatch beats the blocked kernel's per-column
    // mask/skip branches even on dense visits.)
    std::uint8_t adopted = 0;
    for (unsigned m = need; m != 0; m &= m - 1) {
      const int l = lane_of(m);
      std::uint64_t cand = src[l];
      run_apply(f.ops.data(), f.ops.size(), &cand);
      if ((have & (1u << l)) == 0 || compare(&cand, &best[l]) == Cmp::Less) {
        best[l] = cand;
        adopted |= static_cast<std::uint8_t>(1u << l);
      }
    }
    return adopted;
  }
  const std::size_t stride = static_cast<std::size_t>(words_);
  const std::size_t wbytes = stride * sizeof(std::uint64_t);
  // One scratch row per thread: wide enough for the few-words carriers the
  // batched tables actually compile; anything wider spills to the heap once.
  constexpr std::size_t kStack = 64;
  std::uint64_t stackbuf[kStack];
  std::uint64_t* cand = stackbuf;
  thread_local std::vector<std::uint64_t> spill;
  const std::size_t rowlen = stride * static_cast<std::size_t>(ncols);
  if (rowlen > kStack) {
    if (spill.size() < rowlen) spill.resize(rowlen);
    cand = spill.data();
  }
  for (unsigned m = need; m != 0; m &= m - 1) {
    const int l = lane_of(m);
    std::memcpy(cand + static_cast<std::size_t>(l) * stride,
                src + static_cast<std::size_t>(l) * stride, wbytes);
  }
  run_apply_block(f.ops.data(), f.ops.size(), cand, ncols, need);
  std::uint8_t adopted = 0;
  for (unsigned m = need; m != 0; m &= m - 1) {
    const int l = lane_of(m);
    const std::uint64_t* cw = cand + static_cast<std::size_t>(l) * stride;
    std::uint64_t* bw = best + static_cast<std::size_t>(l) * stride;
    if ((have & (1u << l)) == 0 || compare(cw, bw) == Cmp::Less) {
      std::memcpy(bw, cw, wbytes);
      adopted |= static_cast<std::uint8_t>(1u << l);
    }
  }
  return adopted;
}

std::uint8_t CompiledAlgebra::select_v(const CompiledLabel& f,
                                       const std::uint64_t* src,
                                       std::uint64_t* best, std::uint8_t need,
                                       std::uint8_t have) const {
  const std::size_t stride = static_cast<std::size_t>(words_);
  if (f.vec && simd::enabled()) {
    // Candidate scratch rows (stride × 8 lanes). The kernel writes a slot's
    // row before ever reading it back, so growth needs no initialization.
    thread_local std::vector<std::uint64_t> tvec;
    if (tvec.size() < stride * 8) tvec.resize(stride * 8);
    const std::uint32_t flags =
        (f.dense ? simd::kDenseOps : 0) | (keys_asc_ ? simd::kKeysAsc : 0);
    return selv_(f.ops.data(), f.ops.size(), src, best, stride, need, have,
                 fast_cmp_.data(), fast_cmp_.size(), tvec.data(), flags);
  }
  // Scalar fallback inside an otherwise vertical relax (non-vec programs, or
  // the kernels toggled off mid-run): gather the lane from the slot-major
  // rows, run the scalar program, scatter on adoption.
  constexpr std::size_t kStack = 64;
  std::uint64_t cbuf[kStack];
  std::uint64_t bbuf[kStack];
  thread_local std::vector<std::uint64_t> cspill, bspill;
  std::uint64_t* cw = cbuf;
  std::uint64_t* bw = bbuf;
  if (stride > kStack) {
    if (cspill.size() < stride) {
      cspill.resize(stride);
      bspill.resize(stride);
    }
    cw = cspill.data();
    bw = bspill.data();
  }
  std::uint8_t adopted = 0;
  for (unsigned m = need; m != 0; m &= m - 1) {
    const int l = lane_of(m);
    for (std::size_t k = 0; k < stride; ++k) {
      cw[k] = src[k * 8 + static_cast<std::size_t>(l)];
    }
    run_apply(f.ops.data(), f.ops.size(), cw);
    bool adopt = (have & (1u << l)) == 0;
    if (!adopt) {
      for (std::size_t k = 0; k < stride; ++k) {
        bw[k] = best[k * 8 + static_cast<std::size_t>(l)];
      }
      adopt = compare(cw, bw) == Cmp::Less;
    }
    if (adopt) {
      for (std::size_t k = 0; k < stride; ++k) {
        best[k * 8 + static_cast<std::size_t>(l)] = cw[k];
      }
      adopted |= static_cast<std::uint8_t>(1u << l);
    }
  }
  return adopted;
}

bool CompiledAlgebra::apply_if_equiv(const CompiledLabel& f,
                                     const std::uint64_t* src,
                                     std::uint64_t* cur) const {
  if (words_ == 1) {
    std::uint64_t c = *src;
    run_apply(f.ops.data(), f.ops.size(), &c);
    if (compare(&c, cur) != Cmp::Equiv) return false;
    *cur = c;
    return true;
  }
  const std::size_t stride = static_cast<std::size_t>(words_);
  const std::size_t wbytes = stride * sizeof(std::uint64_t);
  constexpr std::size_t kStack = 64;
  std::uint64_t stackbuf[kStack];
  std::uint64_t* c = stackbuf;
  thread_local std::vector<std::uint64_t> spill;
  if (stride > kStack) {
    if (spill.size() < stride) spill.resize(stride);
    c = spill.data();
  }
  std::memcpy(c, src, wbytes);
  run_apply(f.ops.data(), f.ops.size(), c);
  if (fast_full_ && simd::enabled()) {
    // Full-coverage flat chains make Equiv coincide with byte equality, so
    // the canonicalizing store is always a no-op: one vector compare
    // replaces compare + memcpy with identical observable bytes.
    return simd::words_equal(c, cur, stride);
  }
  if (compare(c, cur) != Cmp::Equiv) return false;
  std::memcpy(cur, c, wbytes);
  return true;
}

// --- encode / decode -------------------------------------------------------

bool CompiledAlgebra::encode_node(const Value& v, int ni,
                                  std::uint64_t* out) const {
  using K = OrderDesc::K;
  const Node& nd = nodes_[static_cast<std::size_t>(ni)];
  switch (nd.k) {
    case K::NatAsc:
    case K::NatDesc:
      if (v.is_inf()) {
        if (!nd.with_inf) return false;
        out[nd.slot] = kInf;
        return true;
      }
      if (!v.is_int() || v.as_int() < 0) return false;
      out[nd.slot] = static_cast<std::uint64_t>(v.as_int());
      return true;
    case K::UnitRealDesc: {
      if (v.kind() != Value::Kind::Real) return false;
      const double d = v.as_real();
      if (!(d >= 0.0 && d <= 1.0)) return false;  // rejects NaN too
      out[nd.slot] = double_bits(d);
      return true;
    }
    case K::ChainAsc:
    case K::ChainDesc:
      if (!v.is_int() || v.as_int() < 0 || v.as_int() > nd.n) return false;
      out[nd.slot] = static_cast<std::uint64_t>(v.as_int());
      return true;
    case K::Discrete:
    case K::Trivial:
    case K::Table:
      if (!v.is_int() || v.as_int() < 0 || v.as_int() >= nd.n) return false;
      out[nd.slot] = static_cast<std::uint64_t>(v.as_int());
      return true;
    case K::SubsetBits:
      if (!v.is_int() || v.as_int() < 0 ||
          v.as_int() >= (std::int64_t{1} << nd.n))
        return false;
      out[nd.slot] = static_cast<std::uint64_t>(v.as_int());
      return true;
    case K::Lex:
    case K::Direct:
      if (!v.is_tuple() || v.as_tuple().size() != 2) return false;
      return encode_node(v.first(), nd.kid[0], out) &&
             encode_node(v.second(), nd.kid[1], out);
    case K::AddTop:
      if (v.is_omega()) {
        for (int s = nd.lo; s < nd.hi; ++s) out[s] = 0;
        out[nd.slot] = 1;
        return true;
      }
      out[nd.slot] = 0;
      return encode_node(v, nd.kid[0], out);
    case K::LexOmega:
      if (v.is_omega()) {
        for (int s = nd.lo; s < nd.hi; ++s) out[s] = 0;
        out[nd.slot] = 1;
        return true;
      }
      if (!v.is_tuple() || v.as_tuple().size() != 2) return false;
      out[nd.slot] = 0;
      return encode_node(v.first(), nd.kid[0], out) &&
             encode_node(v.second(), nd.kid[1], out);
    case K::Opaque:
      return false;
  }
  return false;
}

Value CompiledAlgebra::decode_node(const std::uint64_t* w, int ni) const {
  using K = OrderDesc::K;
  const Node& nd = nodes_[static_cast<std::size_t>(ni)];
  switch (nd.k) {
    case K::NatAsc:
    case K::NatDesc:
      if (w[nd.slot] == kInf) return Value::inf();
      return Value::integer(static_cast<std::int64_t>(w[nd.slot]));
    case K::UnitRealDesc:
      return Value::real(bits_double(w[nd.slot]));
    case K::ChainAsc:
    case K::ChainDesc:
    case K::Discrete:
    case K::Trivial:
    case K::Table:
    case K::SubsetBits:
      return Value::integer(static_cast<std::int64_t>(w[nd.slot]));
    case K::Lex:
    case K::Direct:
      return Value::pair(decode_node(w, nd.kid[0]), decode_node(w, nd.kid[1]));
    case K::AddTop:
      if (w[nd.slot] == 1) return Value::omega();
      return decode_node(w, nd.kid[0]);
    case K::LexOmega:
      if (w[nd.slot] == 1) return Value::omega();
      return Value::pair(decode_node(w, nd.kid[0]), decode_node(w, nd.kid[1]));
    case K::Opaque:
      break;
  }
  return Value::unit();
}

bool CompiledAlgebra::encode(const Value& v, std::uint64_t* out) const {
  if (obs::enabled()) {
    static obs::Counter& c = obs::registry().counter("compile.encode_calls");
    c.add(1);
  }
  return encode_node(v, root_, out);
}

Value CompiledAlgebra::decode(const std::uint64_t* w) const {
  if (obs::enabled()) {
    static obs::Counter& c = obs::registry().counter("compile.decode_calls");
    c.add(1);
  }
  return decode_node(w, root_);
}

// --- driver ----------------------------------------------------------------

CompiledAlgebra CompiledAlgebra::compile(const OrderTransform& alg) {
  CompiledAlgebra c;
  c.fallback_ = Fallback::None;
  c.root_ = c.build_node(alg.ord->describe());
  if (c.root_ < 0) return c;

  // Top programs: the root's first, then one per lex_omega S-subtree (the
  // collapse test embedded in apply programs).
  std::vector<TopOp> root_top;
  c.emit_top(c.root_, root_top);
  c.root_top_len_ = static_cast<std::uint32_t>(root_top.size());
  c.top_ops_ = std::move(root_top);
  for (Node& nd : c.nodes_) {
    if (nd.k != OrderDesc::K::LexOmega) continue;
    std::vector<TopOp> stop;
    c.emit_top(nd.kid[0], stop);
    nd.stop_off = static_cast<std::uint32_t>(c.top_ops_.size());
    nd.stop_len = static_cast<std::uint32_t>(stop.size());
    c.top_ops_.insert(c.top_ops_.end(), stop.begin(), stop.end());
  }

  c.emit_cmp(c.root_, 0);
  int depth = 0, max_depth = 0;
  for (const CmpOp& op : c.cmp_ops_) {
    if (op.k == CmpOp::K::LexBegin || op.k == CmpOp::K::DirBegin) {
      max_depth = std::max(max_depth, ++depth);
    } else if (op.k == CmpOp::K::End) {
      --depth;
    }
  }
  if (max_depth > kMaxCmpDepth) {
    c.fallback_ = Fallback::TooDeep;
    return c;
  }

  // Fast path: one flat lex chain of word-comparable scalars (this covers
  // every deep-lex stack of shortest/widest/reliability components).
  c.fast_ = false;
  {
    std::vector<FastCmp> fast;
    bool ok = !c.cmp_ops_.empty();
    const bool wrapped = ok && c.cmp_ops_[0].k == CmpOp::K::LexBegin;
    const std::size_t lo = wrapped ? 1 : 0;
    const std::size_t hi = c.cmp_ops_.size() - (wrapped ? 1 : 0);
    if (wrapped && c.cmp_ops_.back().k != CmpOp::K::End) ok = false;
    if (!wrapped && c.cmp_ops_.size() != 1) ok = false;
    for (std::size_t i = lo; ok && i < hi; ++i) {
      const CmpOp& op = c.cmp_ops_[i];
      if (op.k == CmpOp::K::Asc) {
        fast.push_back(FastCmp{op.slot, 0});
      } else if (op.k == CmpOp::K::Desc) {
        fast.push_back(FastCmp{op.slot, 1});
      } else {
        ok = false;
      }
    }
    if (ok) {
      c.fast_ = true;
      c.fast_cmp_ = std::move(fast);
      c.keys_asc_ = c.fast_cmp_.size() == static_cast<std::size_t>(c.words_);
      for (std::size_t i = 0; c.keys_asc_ && i < c.fast_cmp_.size(); ++i) {
        if (c.fast_cmp_[i].slot != i) c.keys_asc_ = false;
      }
    }
  }
  c.selv_ = simd::select_v();
  // A flat chain always visits each word once (scalars own one slot, guard
  // words compile to Asc entries), but assert coverage explicitly before
  // letting witness checks treat Equiv as byte equality.
  c.fast_full_ =
      c.fast_ && c.fast_cmp_.size() == static_cast<std::size_t>(c.words_);

  int fam_root = -1;
  if (!c.align_family(alg.fns->describe(), c.root_, &fam_root)) {
    if (c.fallback_ == Fallback::None) c.fallback_ = Fallback::ShapeMismatch;
    return c;
  }
  c.fam_root_ = fam_root;
  return c;
}

}  // namespace compile
}  // namespace mrt
