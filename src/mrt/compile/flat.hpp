// Flat weight primitives shared by the compiled kernels and their consumers.
//
// A compiled algebra stores a carrier element as a fixed-length vector of
// 64-bit words ("FlatWeight"). Scalar components occupy one word each at a
// fixed slot; ∞ is the reserved sentinel kInf; an adjoined ω (add_top /
// lex_omega) is a guard word (1 = ω) whose inner slots are zero-filled
// canonically, so word-vector equality coincides with boxed Value equality.
// See docs/COMPILE.md for the full layout spec.
#pragma once

#include <array>
#include <cstdint>

namespace mrt {
namespace compile {

/// ∞ sentinel in ℕ-carrying slots. Encoded weights stay far below this in
/// practice (path weights are sums of small label constants).
inline constexpr std::uint64_t kInf = ~std::uint64_t{0};

/// Inline flat-weight capacity of a simulator message. Algebras wider than
/// this run the sim on the boxed path (deep-lex stacks of depth ≤ 8 fit).
inline constexpr int kMsgWords = 8;

/// A fixed-capacity flat weight for simulator messages and route tables:
/// `present == false` is a withdrawal (no route), mirroring the boxed
/// std::optional<Value>.
struct FlatMsg {
  bool present = false;
  std::uint8_t n = 0;  // words in use
  std::array<std::uint64_t, kMsgWords> w{};

  friend bool operator==(const FlatMsg& a, const FlatMsg& b) {
    if (a.present != b.present) return false;
    if (!a.present) return true;
    if (a.n != b.n) return false;
    for (int i = 0; i < a.n; ++i) {
      if (a.w[static_cast<std::size_t>(i)] != b.w[static_cast<std::size_t>(i)])
        return false;
    }
    return true;
  }
};

}  // namespace compile
}  // namespace mrt
