#include "mrt/compile/engine.hpp"

#include <cstdlib>
#include <string>

#include "mrt/obs/metrics.hpp"

namespace mrt {
namespace compile {

namespace {

bool compile_enabled_from_env() {
  const char* e = std::getenv("MRT_COMPILE");
  return e == nullptr || std::string(e) != "0";
}

}  // namespace

WeightEngine::WeightEngine(const OrderTransform& alg)
    : algebra_(CompiledAlgebra::compile(alg)),
      enabled_(compile_enabled_from_env()) {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::registry();
  if (algebra_.ok()) {
    reg.counter("compile.compiled").add(1);
  } else {
    reg.counter("compile.fallbacks").add(1);
    reg.counter(std::string("compile.fallback.") +
                fallback_name(algebra_.fallback()))
        .add(1);
  }
}

CompiledNet CompiledNet::make(const WeightEngine& eng,
                              const LabeledGraph& net) {
  CompiledNet cn;
  cn.alg_ = &eng.algebra();
  if (!eng.compiled()) return cn;
  const int narcs = net.graph().num_arcs();
  cn.labels_.reserve(static_cast<std::size_t>(narcs));
  bool all_ok = true;
  for (int id = 0; id < narcs; ++id) {
    cn.labels_.push_back(eng.algebra().compile_label(net.label(id)));
    all_ok = all_ok && cn.labels_.back().ok;
  }
  cn.ok_ = all_ok;
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    if (all_ok) {
      reg.counter("compile.labels_compiled")
          .add(static_cast<std::uint64_t>(narcs));
    } else {
      reg.counter("compile.fallbacks").add(1);
      reg.counter("compile.fallback.bad_label").add(1);
    }
  }
  return cn;
}

bool CompiledNet::relabel(int arc_id, const Value& label) {
  if (labels_.empty()) return ok_;  // algebra never compiled: stays boxed
  labels_[static_cast<std::size_t>(arc_id)] = alg_->compile_label(label);
  bool all_ok = true;
  for (const CompiledLabel& l : labels_) all_ok = all_ok && l.ok;
  ok_ = all_ok;
  if (obs::enabled()) obs::registry().counter("compile.labels_recompiled").add(1);
  return ok_;
}

}  // namespace compile
}  // namespace mrt
