// Compiled bisemigroups: the algebraic-quadrant counterpart of
// CompiledAlgebra. A Bisemigroup (S, ⊕, ⊗) lowers to the same fixed word
// layout plus two fused binary kernels, add(a,b,out) and mul(a,b,out),
// executed as flat op-programs. The closure solvers route their inner
// matrix loops through these kernels.
//
// Lexicographic products compile to a LexSelect op implementing Theorem 2's
// case split (s = a.s, s = b.s, both, or neither — the last requiring the
// T factor's identity α_T, else Fallback::LexNoIdentity). lex_omega
// semigroups stay boxed (Opaque).
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/compile/compile.hpp"
#include "mrt/core/quadrants.hpp"

namespace mrt {
namespace compile {

/// One binary-kernel opcode: out = a ∘ b, slotwise, except LexSelect which
/// implements the lex case split over word ranges.
struct BinOp {
  enum class K : std::uint8_t {
    MinU,       // min of uint64 words (kInf is naturally greatest)
    MaxU,       // max of uint64 words
    PlusSat,    // ℕ∪{∞} addition, ∞ absorbs
    TimesSat,   // ℕ∪{∞} multiplication, ∞ absorbs (even 0·∞ = ∞)
    MaxRealBits,  // max of [0,1] doubles via their bit patterns
    TimesReal,  // product of [0,1] doubles
    ChainAdd,   // min(imm, a + b) on a chain {0..imm}
    PlusMod,    // (a + b) mod imm
    CopyA,      // left projection
    CopyB,      // right projection
    OrBits,     // bitmask union
    AndBits,    // bitmask intersection
    Table,      // aux[a_off + x*n + y] (a = aux offset, b = n)
    LexSelect,  // lex case split; see semiring.cpp
  };
  K k;
  std::uint16_t slot = 0;
  std::uint32_t a = 0;   // Table: aux offset; LexSelect: packed S range
  std::uint32_t b = 0;   // Table: carrier size; LexSelect: packed T range
  std::uint64_t imm = 0;  // ChainAdd/PlusMod: modulus; LexSelect: skip|α_T
};

class CompiledBisemigroup {
 public:
  CompiledBisemigroup() = default;

  static CompiledBisemigroup compile(const Bisemigroup& alg);

  bool ok() const { return fallback_ == Fallback::None; }
  Fallback fallback() const { return fallback_; }
  int words() const { return words_; }

  /// out = a ⊕ b. `out` must not alias `a` or `b` (LexSelect reads both
  /// operands after writing earlier slots of out).
  void add(const std::uint64_t* a, const std::uint64_t* b,
           std::uint64_t* out) const {
    run(add_ops_, a, b, out);
  }
  /// out = a ⊗ b; same aliasing rule.
  void mul(const std::uint64_t* a, const std::uint64_t* b,
           std::uint64_t* out) const {
    run(mul_ops_, a, b, out);
  }

  bool encode(const Value& v, std::uint64_t* out) const;
  Value decode(const std::uint64_t* w) const;

 private:
  // Carrier categories a scalar word can hold; add and mul must agree on
  // the category (and size) of every slot for the layout to be shared.
  enum class Cat : std::uint8_t { ExtNat, Real, SmallInt, Pair };

  struct SNode {
    Cat cat = Cat::Pair;
    std::uint16_t slot = 0;
    std::uint16_t lo = 0, hi = 0;
    bool with_inf = false;
    std::uint64_t size = 0;  // SmallInt: carrier size
    int kid[2] = {-1, -1};
  };

  int build_snode(const SemigroupDesc& d);
  bool emit_bin(const SemigroupDesc& d, int node, std::vector<BinOp>& out);
  bool identity_words(const SemigroupDesc& d, int node,
                      std::uint64_t* out) const;
  bool encode_node(const Value& v, int node, std::uint64_t* out) const;
  Value decode_node(const std::uint64_t* w, int node) const;
  void run(const std::vector<BinOp>& ops, const std::uint64_t* a,
           const std::uint64_t* b, std::uint64_t* out) const;

  Fallback fallback_ = Fallback::OpaqueOrder;
  int words_ = 0;
  int root_ = -1;
  std::vector<SNode> nodes_;
  std::vector<BinOp> add_ops_, mul_ops_;
  std::vector<std::uint64_t> aux_;  // op tables + encoded α_T vectors
};

}  // namespace compile
}  // namespace mrt
