// The WeightEngine seam: one compiled kernel set per algebra, one set of
// precompiled per-arc label programs per network. Consumers (dijkstra,
// bellman, closure, the path-vector simulator) take an optional CompiledNet;
// when present and fully compiled they run the flat kernels, otherwise they
// fall back to the boxed interpreter — always with identical results.
#pragma once

#include <memory>
#include <vector>

#include "mrt/compile/compile.hpp"
#include "mrt/routing/labeled_graph.hpp"

namespace mrt {
namespace compile {

/// Owns the compiled kernels of one algebra. Construction compiles (once)
/// and publishes obs counters: compile.compiled, compile.fallbacks,
/// compile.fallback.<reason>. The MRT_COMPILE env toggle (default on, read
/// at construction; "0" disables) forces the boxed path for A/B runs.
class WeightEngine {
 public:
  explicit WeightEngine(const OrderTransform& alg);

  /// True iff the algebra compiled and MRT_COMPILE did not disable it.
  bool compiled() const { return enabled_ && algebra_.ok(); }
  Fallback fallback() const { return algebra_.fallback(); }
  const CompiledAlgebra& algebra() const { return algebra_; }

 private:
  CompiledAlgebra algebra_;
  bool enabled_ = true;
};

/// Per-network compiled state: one apply program per arc. ok() requires the
/// engine compiled AND every arc label compiled — a single bad label sends
/// the whole network to the boxed path (counted as compile.fallback.bad_label).
class CompiledNet {
 public:
  static CompiledNet make(const WeightEngine& eng, const LabeledGraph& net);

  bool ok() const { return ok_; }
  const CompiledAlgebra& algebra() const { return *alg_; }
  int words() const { return alg_->words(); }
  const CompiledLabel& label(int arc_id) const {
    return labels_[static_cast<std::size_t>(arc_id)];
  }

  /// Recompiles one arc's label program in place (the delta-aware path of
  /// mrt::dyn — a relabel re-encodes only the changed arc, not the network).
  /// Returns the new ok(): a label outside the compilable range sends the
  /// whole network back to the boxed path, exactly as in make().
  bool relabel(int arc_id, const Value& label);

 private:
  const CompiledAlgebra* alg_ = nullptr;
  std::vector<CompiledLabel> labels_;
  bool ok_ = false;
};

}  // namespace compile
}  // namespace mrt
