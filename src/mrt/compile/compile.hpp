// mrt::compile — lower an elaborated OrderTransform to flat, allocation-free
// weight kernels.
//
// The boxed interpreter pays for the metalanguage's generality on every
// weight operation: `Value` is a variant whose tuple payloads live behind
// shared_ptr, and every compare/apply walks a virtual-dispatch tree. This
// compiler runs that walk exactly once per algebra. It asks each component
// for its structural shape (PreorderSet::describe() et al.), lays the carrier
// out as a fixed vector of 64-bit words, and emits three fused kernels as
// flat op-programs executed in tight loops — no recursion, no allocation, no
// virtual dispatch:
//
//   compare(a, b)  — four-way Cmp over two word vectors
//   apply(f, w)    — one precompiled per-arc label program, in place
//   is_top(w)      — ⊤-membership (the "unreachable/invalid" test)
//
// plus lossless encode(Value) ⟷ decode(FlatWeight) at the boundaries. The
// encoding is canonical and injective, so word-vector equality coincides
// with boxed Value equality (route-table change detection relies on this).
//
// Anything describe() reports as Opaque — or any shape this compiler does
// not support — yields a CompiledAlgebra with ok() == false and an explicit
// Fallback reason; consumers then stay on the boxed path and mrt::obs counts
// the fallback (compile.fallback.<reason>).
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/compile/flat.hpp"
#include "mrt/compile/simd.hpp"
#include "mrt/core/describe.hpp"
#include "mrt/core/order.hpp"
#include "mrt/core/quadrants.hpp"

namespace mrt {
namespace compile {

/// Why an algebra (or one of its labels) could not be compiled.
enum class Fallback {
  None,           // compiled fine
  OpaqueOrder,    // some PreorderSet reported no shape
  OpaqueFamily,   // some FunctionFamily reported no shape
  ShapeMismatch,  // family tree does not align with the order tree
  TableTooLarge,  // finite table carrier exceeds 64 elements
  TooDeep,        // nesting exceeds the fixed evaluator stack
  TooWide,        // layout exceeds the addressable slot range
  BadLabel,       // a concrete arc label failed to compile
  LexNoIdentity,  // lex semigroup whose T factor has no identity α_T
};
const char* fallback_name(Fallback f);

/// One comparison opcode. Begin ops open a lex/direct frame whose matching
/// End sits at index `a`; scalar ops classify one slot.
struct CmpOp {
  enum class K : std::uint8_t {
    Asc,       // numeric uint64 order (∞ = kInf is greatest)
    Desc,      // reversed numeric order (also [0,1] reals via bit patterns)
    Eq,        // discrete: Equiv iff equal, else Incomp
    True,      // trivial: always Equiv
    Subset,    // bitmask ⊆
    Table,     // finite leq matrix in the aux pool
    LexBegin,  // first non-Equiv child decides
    DirBegin,  // conjunction of child directions
    End,
  };
  K k;
  std::uint16_t slot = 0;
  std::uint32_t a = 0;  // Begin: index of matching End; Table: aux offset
  std::uint32_t b = 0;  // Table: carrier size
};

/// One ⊤-membership opcode; a top program is a conjunction (empty = true).
struct TopOp {
  enum class K : std::uint8_t {
    Eq,       // w[slot] == imm
    Never,    // no top exists in this component
    MaskBit,  // bit w[slot] of imm (finite table tops)
  };
  K k;
  std::uint16_t slot = 0;
  std::uint64_t imm = 0;
};

/// One label-application opcode, applied to a weight vector in place.
struct ApplyOp {
  enum class K : std::uint8_t {
    Set,            // w[slot] = imm
    AddSat,         // w[slot] += imm unless already kInf
    MinWord,        // w[slot] = min(w[slot], imm)
    MulReal,        // w[slot] = bits(double(w[slot]) * double(imm))
    ChainAdd,       // w[slot] = min(a, w[slot] + imm)
    Table,          // w[slot] = aux[a + w[slot]]
    SkipIfGuard,    // if w[slot] == 1 skip the next a ops (ω is fixed)
    CollapseIfTop,  // if top-program (a,b) holds: zero imm-packed range,
                    // w[slot] = 1   (lex_omega's collapse onto ω)
  };
  K k;
  std::uint16_t slot = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t imm = 0;
};

/// A per-label apply program (precompiled once per arc). `vec` marks
/// programs made only of lanewise ops (Set/AddSat/MinWord/MulReal/ChainAdd —
/// no per-column control flow), eligible for the SIMD select kernels.
/// `dense` additionally marks exactly one op per slot in slot order
/// 0..words-1 (the shape every lex stack of scalar components emits), which
/// lets the vertical kernel fuse apply and lex fold into one pass.
struct CompiledLabel {
  std::vector<ApplyOp> ops;
  bool ok = false;
  bool vec = false;
  bool dense = false;
};

class CompiledAlgebra {
 public:
  CompiledAlgebra() = default;

  /// Compiles `alg`; inspect ok()/fallback() on the result. Never throws on
  /// unsupported shapes — unsupported means boxed, not broken.
  static CompiledAlgebra compile(const OrderTransform& alg);

  bool ok() const { return fallback_ == Fallback::None; }
  Fallback fallback() const { return fallback_; }

  /// Fixed word count of every encoded carrier element.
  int words() const { return words_; }

  /// Four-way comparison of two flat weights (exactly ord->cmp on the
  /// decoded values).
  Cmp compare(const std::uint64_t* a, const std::uint64_t* b) const;

  /// ⊤-membership (exactly ord->is_top on the decoded value).
  bool is_top(const std::uint64_t* w) const;

  /// Applies a precompiled label program in place (exactly fns->apply).
  void apply(const CompiledLabel& f, std::uint64_t* w) const {
    run_apply(f.ops.data(), f.ops.size(), w);
  }

  /// Applies one label program to `ncols` consecutive weights (each words()
  /// long, contiguous — one destination block of a batched route table),
  /// decoding each opcode once per block instead of once per column.
  /// Byte-identical to ncols separate apply() calls; per-column control flow
  /// (ω guards) is tracked with per-column skip counters. ncols <= 64.
  void apply_block(const CompiledLabel& f, std::uint64_t* w, int ncols) const {
    const std::uint64_t all =
        ncols >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << ncols) - 1);
    run_apply_block(f.ops.data(), f.ops.size(), w, ncols, all);
  }

  /// Fused relax kernel for one arc visit over a block of `ncols`
  /// contiguous weights (each words() long): for every lane set in `need`,
  /// computes f(src_lane) and adopts it into the matching lane of `best`
  /// when the lane is absent from `have` or the candidate compares strictly
  /// Less. Returns the adopted-lane mask. Byte-identical to a per-lane
  /// apply() + compare() + copy loop in ascending lane order, with one
  /// opcode decode and one call for the whole visit. ncols <= 8.
  std::uint8_t select_block(const CompiledLabel& f, const std::uint64_t* src,
                            std::uint64_t* best, int ncols, std::uint8_t need,
                            std::uint8_t have) const;

  /// True when compare() lowers to the flat lex-key chain the SIMD kernels
  /// fold — the precondition for the vertical (slot-major) relax layout.
  bool lex_flat() const { return fast_; }

  /// select_block over slot-major rows: `src` and `best` hold all 8 lanes of
  /// one full block node row word-interleaved (word k of lane l at k*8 + l).
  /// Vec-eligible programs run the dispatched vertical kernel (vector loads
  /// end to end); other programs gather/scatter per lane. Byte-identical to
  /// select_block on the equivalent lane-major rows. Requires lex_flat() and
  /// a full 8-lane block.
  std::uint8_t select_v(const CompiledLabel& f, const std::uint64_t* src,
                        std::uint64_t* best, std::uint8_t need,
                        std::uint8_t have) const;

  /// Fused witness-check kernel: computes f(src) and, when the result
  /// compares Equiv to `cur`, stores it into `cur` (canonicalizing the weight
  /// to the achieved encoding) and returns true; otherwise `cur` is left
  /// untouched. Byte-identical to apply() into a scratch row followed by
  /// compare() and a conditional copy — one call instead of three.
  bool apply_if_equiv(const CompiledLabel& f, const std::uint64_t* src,
                      std::uint64_t* cur) const;

  /// Encodes a carrier element; false if `v` is not representable in this
  /// layout (the caller must then stay boxed).
  bool encode(const Value& v, std::uint64_t* out) const;

  /// Decodes a flat weight back to the boxed carrier element. Lossless:
  /// decode(encode(v)) == v for every carrier element.
  Value decode(const std::uint64_t* w) const;

  /// Compiles one arc label into an apply program; `ok == false` if this
  /// label is outside the family's compilable range.
  CompiledLabel compile_label(const Value& label) const;

 private:
  // One node of the flattened layout tree. Scalars own one word at `slot`;
  // AddTop/LexOmega own a guard word at `slot` ahead of their kids; every
  // node covers the word range [lo, hi).
  struct Node {
    OrderDesc::K k = OrderDesc::K::Opaque;
    std::uint16_t slot = 0;
    std::uint16_t lo = 0, hi = 0;
    bool with_inf = false;
    int n = 0;
    std::uint32_t aux = 0;       // Table: offset of n×n leq entries
    std::uint64_t top_mask = 0;  // Table: bitset of ⊤ elements
    std::uint32_t stop_off = 0, stop_len = 0;  // LexOmega: S-top program
    int kid[2] = {-1, -1};
  };

  // One node of the family tree, aligned against a layout node.
  struct FamNode {
    FamilyDesc::K k = FamilyDesc::K::Opaque;
    int node = -1;
    int n = 0;                // Table carrier size / ChainAdd cap
    std::uint32_t aux = 0;    // Table: base of all label rows
    std::size_t nlabels = 0;  // Table: number of rows
    int kid[2] = {-1, -1};
  };

  // The flat-chain compare step is the same POD the SIMD lex fold consumes.
  using FastCmp = LexKey;

  int build_node(const OrderDesc& d);
  bool align_family(const FamilyDesc& fd, int node, int* out);
  void emit_cmp(int node, int parent);
  void emit_top(int node, std::vector<TopOp>& out) const;
  bool emit_apply(int fnode, const Value& label,
                  std::vector<ApplyOp>& out) const;
  bool encode_node(const Value& v, int node, std::uint64_t* out) const;
  Value decode_node(const std::uint64_t* w, int node) const;
  bool eval_top(const std::uint64_t* w, std::uint32_t off,
                std::uint32_t len) const;
  void run_apply(const ApplyOp* ops, std::size_t n, std::uint64_t* w) const;
  void run_apply_block(const ApplyOp* ops, std::size_t n, std::uint64_t* w,
                       int ncols, std::uint64_t mask) const;

  Fallback fallback_ = Fallback::OpaqueOrder;
  int words_ = 0;
  int root_ = -1;
  int fam_root_ = -1;
  std::vector<Node> nodes_;
  std::vector<FamNode> fnodes_;
  std::vector<CmpOp> cmp_ops_;
  std::vector<TopOp> top_ops_;      // shared pool; root program first
  std::uint32_t root_top_len_ = 0;  // root program = top_ops_[0, len)
  std::vector<std::uint64_t> aux_;  // leq matrices + table-family rows
  bool fast_ = false;
  // fast_ with the chain covering every word slot: Equiv coincides with
  // byte equality, so witness checks can skip the canonicalizing store.
  bool fast_full_ = false;
  std::vector<FastCmp> fast_cmp_;
  // ISA-dispatched vertical kernel, resolved once at compile() so the
  // per-arc-visit hot path skips the dispatcher accessor.
  simd::SelectVFn selv_ = nullptr;
  // fast_ chain where key ki compares slot ki ascending coverage — the
  // select_v fused-pass precondition (paired with CompiledLabel::dense).
  bool keys_asc_ = false;
};

}  // namespace compile
}  // namespace mrt
