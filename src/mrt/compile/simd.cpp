// Generic SIMD build + the MRT_SIMD toggle and runtime ISA dispatch. The
// kernels here are the baseline-ISA lowering of simd_body.inc (SSE2 on
// x86-64, NEON on aarch64); simd_avx2.cpp compiles the same bodies with
// -mavx2, and the dispatcher picks the AVX2 table once when the CPU
// supports it.

#include "mrt/compile/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#define MRT_SIMD_ISA generic
#define MRT_SIMD_ENTRY generic_kernels
#include "mrt/compile/simd_body.inc"
#undef MRT_SIMD_ISA
#undef MRT_SIMD_ENTRY

namespace mrt {
namespace compile {
namespace simd {
namespace {

bool simd_enabled_from_env() {
  const char* e = std::getenv("MRT_SIMD");
  return e == nullptr || std::string(e) != "0";
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{simd_enabled_from_env()};
  return flag;
}

bool have_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

const Kernels& active() {
  static const Kernels& k =
#if defined(__x86_64__) || defined(__i386__)
      have_avx2() ? detail::avx2_kernels() : detail::generic_kernels();
#else
      detail::generic_kernels();
#endif
  return k;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

const char* active_isa() { return have_avx2() ? "avx2" : "generic"; }

SelectW1Fn select_w1() { return active().select_w1; }
SelectVFn select_v() { return active().select_v; }

bool words_equal(const std::uint64_t* a, const std::uint64_t* b,
                 std::size_t n) {
  return active().words_equal(a, b, n);
}

void words_copy(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  active().words_copy(dst, src, n);
}

}  // namespace simd
}  // namespace compile
}  // namespace mrt
