// mrt::compile::simd — vectorized lane kernels for the batched RIB hot path.
//
// The RIB stores a destination block's weights column-major inside a
// node-major row (words[(v*cols + c)*stride + k]), so the kBlockCols = 8
// columns of one node sit side by side in memory: for single-word carriers
// they are 8 contiguous uint64 lanes. For wider carriers the RIB reshapes
// full blocks to slot-major rows (word k of lane l at k*8 + l) around dense
// relaxes, so every word slot's 8 lanes line up contiguously and the whole
// arc visit — apply, lex fold, adopt blend — runs gather-free. These kernels
// run the fused relax primitives over those vertical lanes with GCC/Clang
// vector extensions:
//
//   select_w1 / select_v — the select_block arc visit: apply one label
//     program to every needed lane and lex-fold strict improvements into the
//     running best row, lane masks instead of per-lane branches
//   words_equal / words_copy — branch-free word-row compare/copy for the
//     stride > 1 relax inner loop
//
// Vectorization never changes a byte: the op set is restricted to lanewise
// exact arithmetic (saturating add, unsigned min, chain add, Set, and IEEE
// double multiply — a single vector multiply rounds identically to the
// scalar multiply), and the lex fold computes the same Less verdict the
// scalar fast-compare chain does. Programs containing per-column control
// flow (ω guards, table gathers, collapses) are not eligible
// (CompiledLabel::vec == false) and stay on the scalar kernels.
//
// Dispatch is resolved once at startup: an AVX2 translation unit is selected
// when the CPU supports it, otherwise a generic build of the same code
// (vector extensions lowered to the baseline ISA — SSE2 on x86-64, NEON on
// aarch64). MRT_SIMD=0 (or set_enabled(false)) forces the scalar kernels,
// mirroring the MRT_COMPILE=0 A/B toggle; results are byte-identical either
// way, so the toggle is purely a measurement instrument.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mrt {
namespace compile {

struct ApplyOp;

/// One step of the flat lex-chain compare fast path: classify slot `slot`
/// ascending (desc == 0) or descending (desc != 0); the first unequal slot
/// decides. Shared by CompiledAlgebra::compare and the SIMD lex fold.
struct LexKey {
  std::uint16_t slot;
  std::uint8_t desc;
};

namespace simd {

/// True unless MRT_SIMD=0 (read once) or set_enabled(false); when false,
/// every consumer runs the scalar kernels.
bool enabled();
/// Runtime override of the MRT_SIMD toggle (tests/benches A/B the kernels
/// in-process).
void set_enabled(bool on);
/// The instruction set the dispatched kernels were compiled for: "avx2" or
/// "generic".
const char* active_isa();

/// Single-word-carrier select: for every lane l < ncols set in `need`, runs
/// the (vec-eligible) label program on src[l] and adopts the result into
/// best[l] when l is absent from `have` or the result compares strictly
/// Less under `key`. Returns the adopted-lane mask — byte-identical to the
/// scalar per-lane loop. ncols <= 8.
using SelectW1Fn = std::uint8_t (*)(const ApplyOp* ops, std::size_t nops,
                                    const std::uint64_t* src,
                                    std::uint64_t* best, int ncols,
                                    std::uint8_t need, std::uint8_t have,
                                    LexKey key);

/// select_v flags: kDenseOps marks a program with exactly one op per slot,
/// in slot order 0..stride-1 (CompiledLabel::dense); kKeysAsc marks a lex
/// chain whose key ki compares slot ki (the layout every lex stack of
/// scalar components gets). Together they enable the fused one-pass kernel.
inline constexpr std::uint32_t kDenseOps = 1;
inline constexpr std::uint32_t kKeysAsc = 2;

/// Multi-word vertical select over slot-major rows: `src` and `best` hold a
/// full 8-lane block node row word-interleaved (word k of lane l at
/// k*8 + l). Runs the program as one vector op per opcode on contiguous
/// lane rows (lazily through `scratch`, stride * 8 words), folds the lex
/// chain `keys` with undecided/less lane masks, and blends adopted lanes
/// into `best` — no gathers or scatters anywhere. With kDenseOps|kKeysAsc
/// the apply and fold fuse into a single register-resident pass per slot.
/// Returns the adopted-lane mask, byte-identical to the scalar per-lane
/// loop.
using SelectVFn = std::uint8_t (*)(const ApplyOp* ops, std::size_t nops,
                                   const std::uint64_t* src,
                                   std::uint64_t* best, std::size_t stride,
                                   std::uint8_t need, std::uint8_t have,
                                   const LexKey* keys, std::size_t nkeys,
                                   std::uint64_t* scratch,
                                   std::uint32_t flags);

using WordsEqualFn = bool (*)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);
using WordsCopyFn = void (*)(std::uint64_t* dst, const std::uint64_t* src,
                             std::size_t n);

/// One ISA build's kernel table; detail::*_kernels() export one per TU and
/// the dispatcher picks a table once at startup.
struct Kernels {
  SelectW1Fn select_w1;
  SelectVFn select_v;
  WordsEqualFn words_equal;
  WordsCopyFn words_copy;
};

namespace detail {
const Kernels& generic_kernels();
const Kernels& avx2_kernels();  // defined only on x86 (referenced only there)
}  // namespace detail

/// Dispatched kernel entry points (resolved once; never null).
SelectW1Fn select_w1();
SelectVFn select_v();

/// Branch-free word-row equality / copy through the dispatched kernels.
bool words_equal(const std::uint64_t* a, const std::uint64_t* b,
                 std::size_t n);
void words_copy(std::uint64_t* dst, const std::uint64_t* src, std::size_t n);

}  // namespace simd
}  // namespace compile
}  // namespace mrt
