// AVX2 build of the simd_body.inc kernels. This translation unit (and only
// this one) is compiled with -mavx2 on x86 (see src/CMakeLists.txt); the
// dispatcher in simd.cpp selects it at startup iff __builtin_cpu_supports
// reports AVX2, so no AVX2 instruction executes on older CPUs. On non-x86
// targets the file compiles to nothing and the accessor is never referenced.

#if defined(__x86_64__) || defined(__i386__)

#define MRT_SIMD_ISA avx2
#define MRT_SIMD_ENTRY avx2_kernels
#include "mrt/compile/simd_body.inc"
#undef MRT_SIMD_ISA
#undef MRT_SIMD_ENTRY

#endif  // x86
