#include "mrt/compile/semiring.hpp"

#include <cstring>

namespace mrt {
namespace compile {

namespace {

std::uint64_t double_bits(double d) {
  if (d == 0.0) d = 0.0;  // canonicalize -0.0
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

double bits_double(std::uint64_t u) {
  double d;
  std::memcpy(&d, &u, sizeof(d));
  return d;
}

}  // namespace

int CompiledBisemigroup::build_snode(const SemigroupDesc& d) {
  using K = SemigroupDesc::K;
  const int idx = static_cast<int>(nodes_.size());
  nodes_.push_back({});
  SNode nd;
  nd.lo = static_cast<std::uint16_t>(words_);
  switch (d.k) {
    case K::Opaque:
      fallback_ = Fallback::OpaqueOrder;
      return -1;
    case K::MinNat:
    case K::MaxNat:
    case K::PlusNat:
    case K::TimesNat:
      nd.cat = Cat::ExtNat;
      nd.with_inf = d.with_inf;
      nd.slot = static_cast<std::uint16_t>(words_++);
      break;
    case K::MaxReal:
    case K::TimesReal:
      nd.cat = Cat::Real;
      nd.slot = static_cast<std::uint16_t>(words_++);
      break;
    case K::ChainMin:
    case K::ChainMax:
    case K::ChainPlus:
      nd.cat = Cat::SmallInt;
      nd.size = static_cast<std::uint64_t>(d.n) + 1;  // chain is {0..n}
      nd.slot = static_cast<std::uint16_t>(words_++);
      break;
    case K::PlusMod:
    case K::LeftProj:
    case K::RightProj:
    case K::Table:
      if (d.n < 1) {
        fallback_ = Fallback::ShapeMismatch;
        return -1;
      }
      nd.cat = Cat::SmallInt;
      nd.size = static_cast<std::uint64_t>(d.n);
      nd.slot = static_cast<std::uint16_t>(words_++);
      break;
    case K::UnionBits:
    case K::InterBits:
      nd.cat = Cat::SmallInt;
      nd.size = std::uint64_t{1} << d.n;
      nd.slot = static_cast<std::uint16_t>(words_++);
      break;
    case K::Lex:
    case K::Direct: {
      if (d.kids.size() != 2) {
        fallback_ = Fallback::ShapeMismatch;
        return -1;
      }
      nd.cat = Cat::Pair;
      nodes_[static_cast<std::size_t>(idx)] = nd;
      const int k0 = build_snode(d.kids[0]);
      if (k0 < 0) return -1;
      const int k1 = build_snode(d.kids[1]);
      if (k1 < 0) return -1;
      nd.kid[0] = k0;
      nd.kid[1] = k1;
      break;
    }
  }
  if (words_ > 0xFFFF) {
    fallback_ = Fallback::TooWide;
    return -1;
  }
  nd.hi = static_cast<std::uint16_t>(words_);
  nodes_[static_cast<std::size_t>(idx)] = nd;
  return idx;
}

bool CompiledBisemigroup::identity_words(const SemigroupDesc& d, int ni,
                                         std::uint64_t* out) const {
  using K = SemigroupDesc::K;
  const SNode& nd = nodes_[static_cast<std::size_t>(ni)];
  switch (d.k) {
    case K::MinNat:
      if (!d.with_inf) return false;  // plain ℕ has no min-identity
      out[nd.slot] = kInf;
      return true;
    case K::MaxNat:
    case K::PlusNat:
      out[nd.slot] = 0;
      return true;
    case K::TimesNat:
      out[nd.slot] = 1;
      return true;
    case K::MaxReal:
      out[nd.slot] = double_bits(0.0);
      return true;
    case K::TimesReal:
      out[nd.slot] = double_bits(1.0);
      return true;
    case K::ChainMin:
      out[nd.slot] = nd.size - 1;
      return true;
    case K::ChainMax:
    case K::ChainPlus:
    case K::PlusMod:
    case K::UnionBits:
      out[nd.slot] = 0;
      return true;
    case K::InterBits:
      out[nd.slot] = nd.size - 1;
      return true;
    case K::Table: {
      for (std::size_t e = 0; e < d.table.size(); ++e) {
        bool ok = true;
        for (std::size_t x = 0; x < d.table.size(); ++x) {
          if (d.table[e][x] != static_cast<int>(x) ||
              d.table[x][e] != static_cast<int>(x)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          out[nd.slot] = static_cast<std::uint64_t>(e);
          return true;
        }
      }
      return false;
    }
    case K::Lex:
    case K::Direct:
      // Both products take the pair of component identities.
      return identity_words(d.kids[0], nd.kid[0], out) &&
             identity_words(d.kids[1], nd.kid[1], out);
    case K::LeftProj:
    case K::RightProj:
    case K::Opaque:
      return false;
  }
  return false;
}

bool CompiledBisemigroup::emit_bin(const SemigroupDesc& d, int ni,
                                   std::vector<BinOp>& out) {
  using K = SemigroupDesc::K;
  const SNode nd = nodes_[static_cast<std::size_t>(ni)];
  auto scalar = [&](BinOp::K k, std::uint64_t imm = 0, std::uint32_t a = 0,
                    std::uint32_t b = 0) {
    BinOp op;
    op.k = k;
    op.slot = nd.slot;
    op.a = a;
    op.b = b;
    op.imm = imm;
    out.push_back(op);
    return true;
  };
  auto mismatch = [&]() {
    fallback_ = Fallback::ShapeMismatch;
    return false;
  };
  switch (d.k) {
    case K::Opaque:
      fallback_ = Fallback::OpaqueOrder;
      return false;
    case K::MinNat:
    case K::MaxNat:
    case K::PlusNat:
    case K::TimesNat:
      if (nd.cat != Cat::ExtNat || nd.with_inf != d.with_inf)
        return mismatch();
      switch (d.k) {
        case K::MinNat: return scalar(BinOp::K::MinU);
        case K::MaxNat: return scalar(BinOp::K::MaxU);
        case K::PlusNat: return scalar(BinOp::K::PlusSat);
        default: return scalar(BinOp::K::TimesSat);
      }
    case K::MaxReal:
      if (nd.cat != Cat::Real) return mismatch();
      return scalar(BinOp::K::MaxRealBits);
    case K::TimesReal:
      if (nd.cat != Cat::Real) return mismatch();
      return scalar(BinOp::K::TimesReal);
    case K::ChainMin:
    case K::ChainMax:
    case K::ChainPlus:
      if (nd.cat != Cat::SmallInt ||
          nd.size != static_cast<std::uint64_t>(d.n) + 1)
        return mismatch();
      if (d.k == K::ChainMin) return scalar(BinOp::K::MinU);
      if (d.k == K::ChainMax) return scalar(BinOp::K::MaxU);
      return scalar(BinOp::K::ChainAdd, static_cast<std::uint64_t>(d.n));
    case K::PlusMod:
      if (nd.cat != Cat::SmallInt ||
          nd.size != static_cast<std::uint64_t>(d.n))
        return mismatch();
      return scalar(BinOp::K::PlusMod, static_cast<std::uint64_t>(d.n));
    case K::LeftProj:
    case K::RightProj:
      if (nd.cat != Cat::SmallInt ||
          nd.size != static_cast<std::uint64_t>(d.n))
        return mismatch();
      return scalar(d.k == K::LeftProj ? BinOp::K::CopyA : BinOp::K::CopyB);
    case K::UnionBits:
    case K::InterBits:
      if (nd.cat != Cat::SmallInt || nd.size != (std::uint64_t{1} << d.n))
        return mismatch();
      return scalar(d.k == K::UnionBits ? BinOp::K::OrBits
                                        : BinOp::K::AndBits);
    case K::Table: {
      if (nd.cat != Cat::SmallInt ||
          nd.size != static_cast<std::uint64_t>(d.n) ||
          d.table.size() != static_cast<std::size_t>(d.n))
        return mismatch();
      const auto base = static_cast<std::uint32_t>(aux_.size());
      for (const auto& row : d.table) {
        if (row.size() != static_cast<std::size_t>(d.n)) return mismatch();
        for (int v : row) {
          if (v < 0 || v >= d.n) return mismatch();
          aux_.push_back(static_cast<std::uint64_t>(v));
        }
      }
      return scalar(BinOp::K::Table, 0, base,
                    static_cast<std::uint32_t>(d.n));
    }
    case K::Direct:
      if (nd.cat != Cat::Pair || d.kids.size() != 2) return mismatch();
      return emit_bin(d.kids[0], nd.kid[0], out) &&
             emit_bin(d.kids[1], nd.kid[1], out);
    case K::Lex: {
      if (nd.cat != Cat::Pair || d.kids.size() != 2) return mismatch();
      const SNode& s = nodes_[static_cast<std::size_t>(nd.kid[0])];
      const SNode& t = nodes_[static_cast<std::size_t>(nd.kid[1])];
      // α_T backs the fourth case of Theorem 2 (s₁⊕s₂ equals neither
      // operand's S part); without it the product is partial — stay boxed.
      std::vector<std::uint64_t> alpha(static_cast<std::size_t>(words_), 0);
      if (!identity_words(d.kids[1], nd.kid[1], alpha.data())) {
        fallback_ = Fallback::LexNoIdentity;
        return false;
      }
      const auto alpha_off = static_cast<std::uint32_t>(aux_.size());
      for (int w = t.lo; w < t.hi; ++w)
        aux_.push_back(alpha[static_cast<std::size_t>(w)]);
      if (!emit_bin(d.kids[0], nd.kid[0], out)) return false;
      const std::size_t sel = out.size();
      out.push_back({});  // patched below once the T program length is known
      if (!emit_bin(d.kids[1], nd.kid[1], out)) return false;
      BinOp op;
      op.k = BinOp::K::LexSelect;
      op.a = (static_cast<std::uint32_t>(s.lo) << 16) | s.hi;
      op.b = (static_cast<std::uint32_t>(t.lo) << 16) | t.hi;
      op.imm = (static_cast<std::uint64_t>(out.size() - sel - 1) << 32) |
               alpha_off;
      out[sel] = op;
      return true;
    }
  }
  return false;
}

void CompiledBisemigroup::run(const std::vector<BinOp>& ops,
                              const std::uint64_t* a, const std::uint64_t* b,
                              std::uint64_t* out) const {
  for (std::size_t ip = 0; ip < ops.size(); ++ip) {
    const BinOp& op = ops[ip];
    const std::uint64_t x = a[op.slot];
    const std::uint64_t y = b[op.slot];
    switch (op.k) {
      case BinOp::K::MinU:
        out[op.slot] = x < y ? x : y;
        break;
      case BinOp::K::MaxU:
        out[op.slot] = x > y ? x : y;
        break;
      case BinOp::K::PlusSat:
        out[op.slot] = (x == kInf || y == kInf) ? kInf : x + y;
        break;
      case BinOp::K::TimesSat:
        out[op.slot] = (x == kInf || y == kInf) ? kInf : x * y;
        break;
      case BinOp::K::MaxRealBits:
        out[op.slot] = x > y ? x : y;  // non-negative doubles order as bits
        break;
      case BinOp::K::TimesReal:
        out[op.slot] = double_bits(bits_double(x) * bits_double(y));
        break;
      case BinOp::K::ChainAdd: {
        const std::uint64_t s = x + y;
        out[op.slot] = s > op.imm ? op.imm : s;
        break;
      }
      case BinOp::K::PlusMod:
        out[op.slot] = (x + y) % op.imm;
        break;
      case BinOp::K::CopyA:
        out[op.slot] = x;
        break;
      case BinOp::K::CopyB:
        out[op.slot] = y;
        break;
      case BinOp::K::OrBits:
        out[op.slot] = x | y;
        break;
      case BinOp::K::AndBits:
        out[op.slot] = x & y;
        break;
      case BinOp::K::Table:
        out[op.slot] = aux_[op.a + x * op.b + y];
        break;
      case BinOp::K::LexSelect: {
        // The S program already wrote out's S range; decide the T part by
        // Theorem 2's case split. Canonical encodings make wordwise
        // equality coincide with Value equality.
        const std::uint32_t s_lo = op.a >> 16, s_hi = op.a & 0xFFFF;
        const std::uint32_t t_lo = op.b >> 16, t_hi = op.b & 0xFFFF;
        bool is_a = true, is_b = true;
        for (std::uint32_t s = s_lo; s < s_hi; ++s) {
          is_a = is_a && out[s] == a[s];
          is_b = is_b && out[s] == b[s];
        }
        if (is_a && is_b) break;  // fall through: T ops compute t₁ ⊗ t₂
        if (is_a) {
          for (std::uint32_t w = t_lo; w < t_hi; ++w) out[w] = a[w];
        } else if (is_b) {
          for (std::uint32_t w = t_lo; w < t_hi; ++w) out[w] = b[w];
        } else {
          const auto alpha = static_cast<std::uint32_t>(op.imm);
          for (std::uint32_t w = t_lo; w < t_hi; ++w)
            out[w] = aux_[alpha + (w - t_lo)];
        }
        ip += op.imm >> 32;  // skip the T program
        break;
      }
    }
  }
}

bool CompiledBisemigroup::encode_node(const Value& v, int ni,
                                      std::uint64_t* out) const {
  const SNode& nd = nodes_[static_cast<std::size_t>(ni)];
  switch (nd.cat) {
    case Cat::ExtNat:
      if (v.is_inf()) {
        if (!nd.with_inf) return false;
        out[nd.slot] = kInf;
        return true;
      }
      if (!v.is_int() || v.as_int() < 0) return false;
      out[nd.slot] = static_cast<std::uint64_t>(v.as_int());
      return true;
    case Cat::Real: {
      if (v.kind() != Value::Kind::Real) return false;
      const double d = v.as_real();
      if (!(d >= 0.0 && d <= 1.0)) return false;
      out[nd.slot] = double_bits(d);
      return true;
    }
    case Cat::SmallInt:
      if (!v.is_int() || v.as_int() < 0 ||
          static_cast<std::uint64_t>(v.as_int()) >= nd.size)
        return false;
      out[nd.slot] = static_cast<std::uint64_t>(v.as_int());
      return true;
    case Cat::Pair:
      if (!v.is_tuple() || v.as_tuple().size() != 2) return false;
      return encode_node(v.first(), nd.kid[0], out) &&
             encode_node(v.second(), nd.kid[1], out);
  }
  return false;
}

Value CompiledBisemigroup::decode_node(const std::uint64_t* w, int ni) const {
  const SNode& nd = nodes_[static_cast<std::size_t>(ni)];
  switch (nd.cat) {
    case Cat::ExtNat:
      if (w[nd.slot] == kInf) return Value::inf();
      return Value::integer(static_cast<std::int64_t>(w[nd.slot]));
    case Cat::Real:
      return Value::real(bits_double(w[nd.slot]));
    case Cat::SmallInt:
      return Value::integer(static_cast<std::int64_t>(w[nd.slot]));
    case Cat::Pair:
      return Value::pair(decode_node(w, nd.kid[0]), decode_node(w, nd.kid[1]));
  }
  return Value::unit();
}

bool CompiledBisemigroup::encode(const Value& v, std::uint64_t* out) const {
  return encode_node(v, root_, out);
}

Value CompiledBisemigroup::decode(const std::uint64_t* w) const {
  return decode_node(w, root_);
}

CompiledBisemigroup CompiledBisemigroup::compile(const Bisemigroup& alg) {
  CompiledBisemigroup c;
  c.fallback_ = Fallback::None;
  const SemigroupDesc ad = alg.add->describe();
  const SemigroupDesc md = alg.mul->describe();
  c.root_ = c.build_snode(ad);
  if (c.root_ < 0) return c;
  if (!c.emit_bin(ad, c.root_, c.add_ops_) ||
      !c.emit_bin(md, c.root_, c.mul_ops_)) {
    if (c.fallback_ == Fallback::None) c.fallback_ = Fallback::ShapeMismatch;
    c.add_ops_.clear();
    c.mul_ops_.clear();
  }
  return c;
}

}  // namespace compile
}  // namespace mrt
