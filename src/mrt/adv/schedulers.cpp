#include <algorithm>
#include <cmath>

#include "mrt/adv/adv.hpp"
#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt::adv {

void AdvScheduler::bind(const LabeledGraph& net, const SimOptions& opts,
                        std::uint32_t stream) {
  min_ = opts.min_delay;
  span_ = opts.max_delay - opts.min_delay;
  last_.assign(static_cast<std::size_t>(net.graph().num_arcs()), 0.0);
  sends_ = 0;
  cur_adv_ = false;
  counters_ = {};
  jstream_ = stream;
  // Mixed with the sim seed so two runs of one campaign scenario see
  // different (still reproducible) adversarial draws.
  policy_rng_ = Rng(par::mix_seed(spec_.seed, opts.seed));
  on_bind(net, opts);
}

void AdvScheduler::on_bind(const LabeledGraph& net, const SimOptions& opts) {
  (void)net;
  (void)opts;
}

double AdvScheduler::draw_delay(int arc, double now, Rng& rng) {
  ++sends_;
  cur_adv_ = spec_.prefix < 0 || sends_ <= spec_.prefix;
  // Exactly one draw from the sim's schedule stream per message — the same
  // contract as the default policy, so the adversarial prefix's boundary
  // leaves the benign suffix's draws aligned with a pure-FIFO run.
  const double base = min_ + rng.unit() * span_;
  if (!cur_adv_) return base;
  return adv_delay(arc, now, base);
}

double AdvScheduler::depart(int arc, double now, double delay) {
  double& last = last_[static_cast<std::size_t>(arc)];
  if (cur_adv_ && unordered()) {
    // No FIFO clamp: the message lands whenever its own latency says,
    // overtaking anything slower that is still in flight on the arc.
    const double when = now + delay;
    if (when < last) {
      ++counters_.reordered;
      obs::jrecord(obs::Subsystem::Sim, obs::EventKind::SchedReorder,
                   jstream_, -1, arc, 0, 0,
                   static_cast<std::uint64_t>(now * 1e6));
    }
    last = std::max(last, when);
    return when;
  }
  const double when = std::max(last, now) + delay;
  last = when;
  return when;
}

const AdvCounters* adv_counters(const Scheduler& s) {
  const auto* a = dynamic_cast<const AdvScheduler*>(&s);
  return a != nullptr ? &a->counters() : nullptr;
}

namespace {

/// Unbounded per-arc reordering: latencies stretched into a window `spread`
/// times the default, delivered with no FIFO clamp. The stretch reuses the
/// base draw (delay and base are strictly monotone in the same unit draw),
/// so the sim-stream draw count stays one per message.
class ReorderScheduler final : public AdvScheduler {
 public:
  using AdvScheduler::AdvScheduler;
  SchedulerKind kind() const override { return SchedulerKind::Reorder; }

 protected:
  double adv_delay(int arc, double now, double base) override {
    (void)arc;
    (void)now;
    return min_ + (base - min_) * spec_.spread;
  }
  bool unordered() const override { return true; }
};

/// Heavy-tailed latencies: each arc is assigned a latency class at bind
/// (1×, 4×, or 16×), and every send multiplies in a capped Pareto(alpha)
/// stretch from the policy rng. FIFO is kept — the adversity is variance,
/// not reordering.
class HeavyTailScheduler final : public AdvScheduler {
 public:
  using AdvScheduler::AdvScheduler;
  SchedulerKind kind() const override { return SchedulerKind::HeavyTail; }

 protected:
  void on_bind(const LabeledGraph& net, const SimOptions& opts) override {
    (void)opts;
    const int m = net.graph().num_arcs();
    arc_class_.resize(static_cast<std::size_t>(m));
    for (int a = 0; a < m; ++a) {
      const std::uint64_t c = policy_rng_.below(3);
      arc_class_[static_cast<std::size_t>(a)] = c == 0 ? 1.0
                                              : c == 1 ? 4.0
                                                       : 16.0;
    }
  }

  double adv_delay(int arc, double now, double base) override {
    (void)now;
    // Pareto via inverse CDF; 1 - unit() ∈ (0, 1].
    const double u = 1.0 - policy_rng_.unit();
    const double stretch =
        std::min(spec_.tail_cap, std::pow(u, -1.0 / spec_.alpha));
    if (stretch >= 4.0) ++counters_.stretched;
    return min_ +
           (base - min_) * arc_class_[static_cast<std::size_t>(arc)] * stretch;
  }

 private:
  std::vector<double> arc_class_;
};

/// Priority inversion: messages riding an arc its receiver currently
/// selects (tracked via note_selection) crawl at `starve_factor` times the
/// default latency, while everything else sprints — the best news always
/// arrives last.
class StarveScheduler final : public AdvScheduler {
 public:
  using AdvScheduler::AdvScheduler;
  SchedulerKind kind() const override { return SchedulerKind::Starve; }

  void note_selection(int node, int arc) override {
    selected_arc_[static_cast<std::size_t>(node)] = arc;
  }

 protected:
  void on_bind(const LabeledGraph& net, const SimOptions& opts) override {
    (void)opts;
    const int m = net.graph().num_arcs();
    arc_src_.resize(static_cast<std::size_t>(m));
    for (int a = 0; a < m; ++a) {
      arc_src_[static_cast<std::size_t>(a)] = net.graph().arc(a).src;
    }
    selected_arc_.assign(static_cast<std::size_t>(net.num_nodes()), -1);
  }

  double adv_delay(int arc, double now, double base) override {
    const int receiver = arc_src_[static_cast<std::size_t>(arc)];
    if (selected_arc_[static_cast<std::size_t>(receiver)] == arc) {
      ++counters_.starved;
      obs::jrecord(obs::Subsystem::Sim, obs::EventKind::SchedStarve,
                   jstream_, receiver, arc, 0, 0,
                   static_cast<std::uint64_t>(now * 1e6));
      return min_ + (base - min_) * spec_.starve_factor;
    }
    // Non-best news rides the express lane (a tenth of the default window)
    // to maximize the inversion.
    return min_ + (base - min_) * 0.1;
  }

 private:
  std::vector<int> arc_src_;       // arc id -> receiving node
  std::vector<int> selected_arc_;  // node -> currently selected arc
};

/// Fixed per-arc latency multipliers — the substrate of pessimal_search.
/// An empty spec.arc_scale synthesizes scales from the policy rng (making
/// the bare kind usable as a builtin adversary).
class ArcScaledScheduler final : public AdvScheduler {
 public:
  using AdvScheduler::AdvScheduler;
  SchedulerKind kind() const override { return SchedulerKind::ArcScaled; }

 protected:
  void on_bind(const LabeledGraph& net, const SimOptions& opts) override {
    (void)opts;
    const std::size_t m =
        static_cast<std::size_t>(net.graph().num_arcs());
    scale_ = spec_.arc_scale;
    if (scale_.empty()) {
      scale_.resize(m);
      for (std::size_t a = 0; a < m; ++a) {
        const std::uint64_t c = policy_rng_.below(4);
        scale_[a] = c == 0 ? 1.0 : c == 1 ? 1.0 : c == 2 ? 8.0 : 64.0;
      }
    } else if (scale_.size() < m) {
      scale_.resize(m, 1.0);
    }
  }

  double adv_delay(int arc, double now, double base) override {
    (void)now;
    return min_ + (base - min_) * scale_[static_cast<std::size_t>(arc)];
  }

 private:
  std::vector<double> scale_;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const ScheduleSpec& spec) {
  switch (spec.kind) {
    case SchedulerKind::FifoJitter:
      return std::make_unique<FifoJitterScheduler>();
    case SchedulerKind::Reorder:
      return std::make_unique<ReorderScheduler>(spec);
    case SchedulerKind::HeavyTail:
      return std::make_unique<HeavyTailScheduler>(spec);
    case SchedulerKind::Starve:
      return std::make_unique<StarveScheduler>(spec);
    case SchedulerKind::ArcScaled:
      return std::make_unique<ArcScaledScheduler>(spec);
  }
  MRT_REQUIRE(false);
  return nullptr;
}

std::vector<ScheduleSpec> builtin_adversaries(std::uint64_t seed) {
  std::vector<ScheduleSpec> out;
  for (SchedulerKind k :
       {SchedulerKind::Reorder, SchedulerKind::HeavyTail,
        SchedulerKind::Starve, SchedulerKind::ArcScaled}) {
    ScheduleSpec s;
    s.kind = k;
    s.seed = seed;
    out.push_back(std::move(s));
  }
  return out;
}

std::string ScheduleSpec::describe() const {
  std::string out = to_string(kind);
  out += " seed=" + std::to_string(seed);
  if (prefix >= 0) out += " prefix=" + std::to_string(prefix);
  switch (kind) {
    case SchedulerKind::Reorder:
      out += " spread=" + std::to_string(spread);
      break;
    case SchedulerKind::HeavyTail:
      out += " alpha=" + std::to_string(alpha);
      break;
    case SchedulerKind::Starve:
      out += " factor=" + std::to_string(starve_factor);
      break;
    case SchedulerKind::ArcScaled:
      out += " scales=" + std::to_string(arc_scale.size());
      break;
    case SchedulerKind::FifoJitter:
      break;
  }
  return out;
}

}  // namespace mrt::adv
