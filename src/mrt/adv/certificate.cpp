#include <ostream>
#include <sstream>

#include "mrt/adv/adv.hpp"
#include "mrt/obs/json.hpp"
#include "mrt/obs/obs.hpp"

namespace mrt::adv {

long dg_bound(int nodes) {
  return static_cast<long>(nodes) * static_cast<long>(nodes);
}

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::WithinBound: return "within_bound";
    case Verdict::BoundViolated: return "bound_violated";
    case Verdict::Converged: return "converged";
    case Verdict::Diverged: return "diverged";
  }
  return "?";
}

namespace {

bool run_was_faulted(const SimStats& st) {
  // Every injected fault or topology event leaves a trace in SimStats (the
  // chaos conservation contract), so "no trace" certifies a pure-schedule
  // run — the only regime where total generations are theorem-comparable.
  return st.link_down_events != 0 || st.link_up_events != 0 ||
         st.node_crash_events != 0 || st.node_restart_events != 0 ||
         st.resync_events != 0 || st.dropped_injected_loss != 0 ||
         st.duplicated_messages != 0 || st.jittered_messages != 0;
}

const char* tri_name(Tri t) {
  switch (t) {
    case Tri::True: return "true";
    case Tri::False: return "false";
    case Tri::Unknown: return "unknown";
  }
  return "?";
}

}  // namespace

ConvergenceCertificate make_certificate(const ConvergenceProfile& profile,
                                        const ScheduleSpec& spec,
                                        std::uint64_t sim_seed, int nodes,
                                        int arcs, const SimResult& res) {
  ConvergenceCertificate c;
  c.profile = profile;
  c.schedule = spec.kind;
  c.sim_seed = sim_seed;
  c.schedule_seed = spec.seed;
  c.nodes = nodes;
  c.arcs = arcs;
  c.converged = res.converged;
  c.faulted = run_was_faulted(res.stats);
  c.events = res.events;
  c.messages = res.stats.messages_sent;
  c.rounds = res.rounds;
  c.stale_discarded = res.stats.stale_discarded;
  c.finish_time = res.finish_time;
  const bool bound_applies =
      profile.increasing == Tri::True && profile.exhaustive && !c.faulted;
  if (bound_applies) {
    c.bound = dg_bound(nodes);
    c.verdict = (c.converged && c.rounds <= c.bound) ? Verdict::WithinBound
                                                     : Verdict::BoundViolated;
  } else {
    c.bound = -1;
    c.verdict = c.converged ? Verdict::Converged : Verdict::Diverged;
  }
  return c;
}

std::string ConvergenceCertificate::describe() const {
  std::ostringstream out;
  out << to_string(verdict) << " schedule=" << mrt::to_string(schedule)
      << " n=" << nodes << " rounds=" << rounds;
  if (bound >= 0) out << "/" << bound;
  out << " events=" << events << " inc=" << tri_name(profile.increasing)
      << (profile.exhaustive ? "(exhaustive)" : "(sampled)")
      << " seed=" << sim_seed;
  if (faulted) out << " faulted";
  return out.str();
}

void ConvergenceCertificate::write_json(std::ostream& out) const {
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("verdict").value(to_string(verdict));
  w.key("schedule").value(mrt::to_string(schedule));
  w.key("sim_seed").value(static_cast<std::uint64_t>(sim_seed));
  w.key("schedule_seed").value(static_cast<std::uint64_t>(schedule_seed));
  w.key("nodes").value(nodes);
  w.key("arcs").value(arcs);
  w.key("converged").value(converged);
  w.key("faulted").value(faulted);
  w.key("events").value(static_cast<std::int64_t>(events));
  w.key("messages").value(static_cast<std::int64_t>(messages));
  w.key("rounds").value(static_cast<std::int64_t>(rounds));
  w.key("stale_discarded").value(static_cast<std::int64_t>(stale_discarded));
  w.key("finish_time").value(finish_time);
  w.key("bound").value(static_cast<std::int64_t>(bound));
  w.key("profile").begin_object();
  w.key("monotone").value(tri_name(profile.monotone));
  w.key("nondecreasing").value(tri_name(profile.nondecreasing));
  w.key("increasing").value(tri_name(profile.increasing));
  w.key("strictly_increasing").value(tri_name(profile.strictly_increasing));
  w.key("exhaustive").value(profile.exhaustive);
  w.end_object();
  w.end_object();
}

ConvergenceCertificate certify(const OrderTransform& alg,
                               const LabeledGraph& net, int dest,
                               const Value& origin, const ScheduleSpec& spec,
                               const SimOptions& opts,
                               const ConvergenceProfile* profile,
                               const compile::WeightEngine* engine) {
  const ConvergenceProfile prof =
      profile != nullptr ? *profile : convergence_profile(alg);
  PathVectorSim sim(alg, net, dest, origin, opts, engine);
  std::unique_ptr<Scheduler> sched = make_scheduler(spec);
  sim.set_scheduler(sched.get());
  const SimResult res = sim.run();
  const ConvergenceCertificate cert = make_certificate(
      prof, spec, opts.seed, net.num_nodes(), net.graph().num_arcs(), res);
  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("adv.certificates").add(1);
    switch (cert.verdict) {
      case Verdict::WithinBound: reg.counter("adv.within_bound").add(1); break;
      case Verdict::BoundViolated:
        reg.counter("adv.bound_violations").add(1);
        break;
      case Verdict::Converged: reg.counter("adv.converged_na").add(1); break;
      case Verdict::Diverged: reg.counter("adv.diverged_na").add(1); break;
    }
    reg.counter("adv.stale_discarded")
        .add(static_cast<std::uint64_t>(cert.stale_discarded));
    if (const AdvCounters* ac = adv_counters(*sched)) {
      reg.counter("adv.reordered")
          .add(static_cast<std::uint64_t>(ac->reordered));
      reg.counter("adv.starved").add(static_cast<std::uint64_t>(ac->starved));
      reg.counter("adv.stretched")
          .add(static_cast<std::uint64_t>(ac->stretched));
    }
    reg.histogram("adv.rounds_per_run")
        .record(static_cast<std::uint64_t>(cert.rounds));
  }
  return cert;
}

}  // namespace mrt::adv
