// mrt::adv — adversarial asynchronous schedules and convergence certificates.
//
// Metarouting's promise is that algebraic properties guarantee protocol
// behaviour under *any* message schedule; Daggitt & Griffin (arXiv
// 2106.01184) sharpen this for policy-rich distributed Bellman–Ford: with a
// strictly increasing algebra the protocol converges within a bounded number
// of activation rounds no matter how adversarial the asynchrony. This module
// turns PathVectorSim into a falsifier of that theorem:
//
//  * Schedule adversaries over the sim's Scheduler seam — unbounded per-arc
//    reordering, heavy-tailed per-arc latency classes, priority inversion
//    that starves whichever arcs currently carry best routes, and fixed
//    per-arc pessimal scalings searched greedily (the chaos shrinker's
//    restart-loop pattern with rounds-to-quiescence as fitness).
//  * A ConvergenceCertificate per run: the algebra's convergence property
//    profile (from the Checker), the schedule class, the measured activation
//    rounds, the theoretical bound when it applies, and a machine-checkable
//    verdict. A bound violation on an exhaustively-proved increasing algebra
//    is a theorem falsification — a hard test failure.
//  * A schedule-prefix shrinker: a failing adversarial schedule is reduced
//    to a 1-minimal prefix (adversarial for the first k sends, benign after)
//    that still reproduces the verdict.
//
// See docs/ADVERSARY.md for the schedule classes, the activation-round
// accounting, and how to read a bound-violation repro.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "mrt/core/checker.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt::adv {

/// A value-type description of one schedule policy: everything needed to
/// reconstruct the Scheduler deterministically (campaigns copy these per
/// run, the shrinker mutates `prefix`).
struct ScheduleSpec {
  SchedulerKind kind = SchedulerKind::FifoJitter;
  /// Seed of the policy's private rng (per-arc latency classes, Pareto
  /// draws). Mixed with — never replacing — the sim's schedule stream.
  std::uint64_t seed = 1;
  /// Reorder: base latencies are stretched into [min_delay,
  /// min_delay + spread·(max_delay−min_delay)) with no FIFO clamp, so later
  /// sends overtake earlier ones arbitrarily often.
  double spread = 16.0;
  /// HeavyTail: Pareto shape (smaller = heavier tail) and the cap on the
  /// sampled stretch factor (keeps virtual time finite).
  double alpha = 1.2;
  double tail_cap = 512.0;
  /// Starve: latency multiplier for messages riding an arc the receiver
  /// currently selects (best-route news travels slowest).
  double starve_factor = 32.0;
  /// ArcScaled: fixed per-arc latency multipliers (index = arc id; arcs
  /// beyond the vector use 1.0). Empty = synthesized from `seed` at bind.
  std::vector<double> arc_scale;
  /// Adversarial behaviour applies only to the first `prefix` sends; the
  /// rest ride the default jittered FIFO. Negative = the whole run. This is
  /// the shrinker's knob: a 1-minimal failing prefix is a repro.
  long prefix = -1;

  std::string describe() const;
};

/// Instantiates the policy a spec describes. FifoJitter returns the sim's
/// default policy; everything else is an AdvScheduler subclass.
std::unique_ptr<Scheduler> make_scheduler(const ScheduleSpec& spec);

/// One spec per built-in adversarial class (Reorder, HeavyTail, Starve,
/// ArcScaled), all seeded from `seed` — the standard falsification gauntlet.
std::vector<ScheduleSpec> builtin_adversaries(std::uint64_t seed);

/// Adversarial-event counts a policy accumulated over one run.
struct AdvCounters {
  long reordered = 0;  ///< sends that overtook an earlier send on their arc
  long starved = 0;    ///< best-route sends priority-inverted
  long stretched = 0;  ///< sends stretched ≥4× by a heavy-tail draw
};

/// Shared base of the adversarial policies: per-run bind state, the
/// adversarial-prefix window, FIFO fallback bookkeeping, a policy-private
/// rng, and AdvCounters. Concrete policies override adv_delay()/unordered().
class AdvScheduler : public Scheduler {
 public:
  explicit AdvScheduler(ScheduleSpec spec) : spec_(std::move(spec)) {}

  void bind(const LabeledGraph& net, const SimOptions& opts,
            std::uint32_t stream) override;
  double draw_delay(int arc, double now, Rng& rng) override;
  double depart(int arc, double now, double delay) override;
  bool reorders() const override { return unordered(); }

  const ScheduleSpec& spec() const { return spec_; }
  const AdvCounters& counters() const { return counters_; }

 protected:
  /// Policy hook: extra per-run setup after the base bind.
  virtual void on_bind(const LabeledGraph& net, const SimOptions& opts);
  /// Policy hook: the adversarial latency for a send whose default-policy
  /// latency would have been `base` (exactly one sim-rng draw, already
  /// consumed — policies must not touch the sim stream again).
  virtual double adv_delay(int arc, double now, double base) = 0;
  /// Policy hook: true if the adversarial window abandons per-arc FIFO.
  virtual bool unordered() const { return false; }

  ScheduleSpec spec_;
  Rng policy_rng_{1};
  AdvCounters counters_;
  double min_ = 0.1;
  double span_ = 0.9;
  std::vector<double> last_;  // per arc: previous delivery time
  long sends_ = 0;
  bool cur_adv_ = false;  // current send inside the adversarial prefix?
  std::uint32_t jstream_ = 0;
};

/// The policy's counters, or nullptr if `s` is not an adversarial policy
/// (e.g. the default FifoJitterScheduler).
const AdvCounters* adv_counters(const Scheduler& s);

/// The activation-round ceiling claimed by the certificate for an n-node
/// network with a strictly increasing algebra: n² rounds. Daggitt & Griffin
/// prove convergence within O(n²) activation rounds (n rounds to freeze each
/// next hop-count ring in the worst case); our generation counting subsumes
/// ≥1 of their pseudocycles per counted round, so a measured count above n²
/// falsifies the theorem rather than the accounting.
long dg_bound(int nodes);

enum class Verdict : unsigned char {
  WithinBound,    ///< bound applies; converged within it
  BoundViolated,  ///< bound applies; diverged or exceeded it — falsification
  Converged,      ///< bound not applicable; run reached quiescence
  Diverged,       ///< bound not applicable; run hit the event cap
};

const char* to_string(Verdict v);

/// Machine-checkable evidence for one sim run: what algebra, what schedule,
/// how many activation rounds, and how that compares to theory. POD —
/// campaigns aggregate these, write_json exports them via mrt::obs.
struct ConvergenceCertificate {
  ConvergenceProfile profile;  ///< Checker verdicts for M/ND/Inc/SInc (left)
  SchedulerKind schedule = SchedulerKind::FifoJitter;
  std::uint64_t sim_seed = 0;
  std::uint64_t schedule_seed = 0;
  int nodes = 0;
  int arcs = 0;
  bool converged = false;
  bool faulted = false;  ///< injected faults / topology events in the run
  long events = 0;       ///< messages delivered
  long messages = 0;     ///< messages sent
  long rounds = 0;       ///< measured activation rounds (generations)
  long stale_discarded = 0;
  double finish_time = 0.0;
  /// dg_bound(nodes) when the bound applies (Inc_L proved exhaustively and
  /// the run was fault-free), else -1.
  long bound = -1;
  Verdict verdict = Verdict::Diverged;

  std::string describe() const;
  void write_json(std::ostream& out) const;
};

/// Builds the certificate for a finished run. The bound is claimed only when
/// `profile.increasing` was proved exhaustively AND the run injected no
/// faults or topology events (the theorem bounds rounds *between* topology
/// changes; a faulted run's total generations are not comparable).
ConvergenceCertificate make_certificate(const ConvergenceProfile& profile,
                                        const ScheduleSpec& spec,
                                        std::uint64_t sim_seed, int nodes,
                                        int arcs, const SimResult& res);

/// Runs one simulation under `spec` and certifies it. `profile` avoids
/// re-checking the algebra per run (pass the result of convergence_profile);
/// when null it is computed here. Bumps the adv.* obs counters.
ConvergenceCertificate certify(const OrderTransform& alg,
                               const LabeledGraph& net, int dest,
                               const Value& origin, const ScheduleSpec& spec,
                               const SimOptions& opts,
                               const ConvergenceProfile* profile = nullptr,
                               const compile::WeightEngine* engine = nullptr);

/// Greedy pessimal-schedule search (the chaos shrinker's restart-loop
/// pattern, inverted): starting from unit per-arc scales, repeatedly bump
/// one arc's latency multiplier and keep any bump that costs the protocol
/// more activation rounds (divergence beats any round count). At most
/// `budget` simulations.
struct PessimalResult {
  ScheduleSpec spec;            ///< the worst schedule found (ArcScaled)
  ConvergenceCertificate cert;  ///< its certificate
  long evaluated = 0;           ///< simulations spent
};
PessimalResult pessimal_search(const OrderTransform& alg,
                               const LabeledGraph& net, int dest,
                               const Value& origin, const SimOptions& opts,
                               long budget = 64,
                               const ConvergenceProfile* profile = nullptr,
                               const compile::WeightEngine* engine = nullptr);

/// Reduces a failing spec (BoundViolated or Diverged) to a 1-minimal
/// adversarial prefix that reproduces the same verdict: binary search down,
/// then walk to the smallest k where `prefix = k` still fails but k−1 does
/// not. Returns the input spec unchanged if it does not fail.
ScheduleSpec shrink_schedule(const OrderTransform& alg,
                             const LabeledGraph& net, int dest,
                             const Value& origin, const ScheduleSpec& spec,
                             const SimOptions& opts,
                             const ConvergenceProfile* profile = nullptr,
                             const compile::WeightEngine* engine = nullptr);

}  // namespace mrt::adv
