#include <utility>

#include "mrt/adv/adv.hpp"
#include "mrt/obs/obs.hpp"

namespace mrt::adv {

namespace {

// Divergence outranks any round count in the fitness order.
bool worse(const ConvergenceCertificate& a, const ConvergenceCertificate& b) {
  if (a.converged != b.converged) return !a.converged;
  return a.rounds > b.rounds;
}

}  // namespace

PessimalResult pessimal_search(const OrderTransform& alg,
                               const LabeledGraph& net, int dest,
                               const Value& origin, const SimOptions& opts,
                               long budget,
                               const ConvergenceProfile* profile,
                               const compile::WeightEngine* engine) {
  const ConvergenceProfile prof =
      profile != nullptr ? *profile : convergence_profile(alg);
  const int m = net.graph().num_arcs();

  PessimalResult out;
  out.spec.kind = SchedulerKind::ArcScaled;
  out.spec.seed = opts.seed;
  out.spec.arc_scale.assign(static_cast<std::size_t>(m), 1.0);
  out.cert = certify(alg, net, dest, origin, out.spec, opts, &prof, engine);
  out.evaluated = 1;

  // Greedy coordinate ascent, restarting the arc sweep after every accepted
  // bump (the same restart-loop shape as chaos::shrink_plan, with the
  // objective flipped to "more activation rounds").
  bool progress = true;
  while (progress && out.evaluated < budget) {
    progress = false;
    for (int a = 0; a < m && out.evaluated < budget; ++a) {
      ScheduleSpec cand = out.spec;
      cand.arc_scale[static_cast<std::size_t>(a)] *= 16.0;
      ConvergenceCertificate c =
          certify(alg, net, dest, origin, cand, opts, &prof, engine);
      ++out.evaluated;
      if (worse(c, out.cert)) {
        out.spec = std::move(cand);
        out.cert = c;
        progress = true;
        break;
      }
    }
  }
  if (obs::enabled()) {
    obs::registry()
        .counter("adv.pessimal_evals")
        .add(static_cast<std::uint64_t>(out.evaluated));
  }
  return out;
}

ScheduleSpec shrink_schedule(const OrderTransform& alg,
                             const LabeledGraph& net, int dest,
                             const Value& origin, const ScheduleSpec& spec,
                             const SimOptions& opts,
                             const ConvergenceProfile* profile,
                             const compile::WeightEngine* engine) {
  const ConvergenceProfile prof =
      profile != nullptr ? *profile : convergence_profile(alg);
  const ConvergenceCertificate full =
      certify(alg, net, dest, origin, spec, opts, &prof, engine);
  if (full.verdict != Verdict::BoundViolated &&
      full.verdict != Verdict::Diverged) {
    return spec;  // nothing to shrink: the schedule does not fail
  }
  const Verdict target = full.verdict;
  const auto fails_at = [&](long prefix) {
    ScheduleSpec s = spec;
    s.prefix = prefix;
    return certify(alg, net, dest, origin, s, opts, &prof, engine).verdict ==
           target;
  };

  // The failing run's own send count is a sufficient prefix (every send was
  // adversarial); divergent runs may keep generating sends forever, so the
  // cap is the honest upper end of the search.
  long hi = spec.prefix >= 0 ? spec.prefix : full.messages;
  if (!fails_at(hi)) return spec;  // fails only unbounded: nothing smaller

  // Binary search the failing frontier, assuming monotonicity...
  long lo = 0;  // prefix 0 = pure FIFO; a failure here is schedule-independent
  while (lo + 1 < hi) {
    const long mid = lo + (hi - lo) / 2;
    if (fails_at(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // ...then certify 1-minimality directly (the frontier need not be
  // monotone): walk down while the next smaller prefix still fails.
  while (hi > 0 && fails_at(hi - 1)) --hi;

  ScheduleSpec out = spec;
  out.prefix = hi;
  if (obs::enabled()) obs::registry().counter("adv.shrinks").add(1);
  return out;
}

}  // namespace mrt::adv
