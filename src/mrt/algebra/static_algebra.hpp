// The static (compile-time) algebra layer.
//
// The dynamic layer in mrt/core is what the metalanguage elaborates into:
// algebras are runtime values and property inference happens at construction.
// This header is the same theory pushed to compile time: algebras are types,
// the combinators are class templates, and the exact property rules of
// Theorems 4–6 are `constexpr` booleans — so a routing algorithm can
// `static_assert` its own correctness conditions and the whole weight
// pipeline inlines to straight-line code (see bench/perf_static_vs_dynamic).
//
// A static order transform is a type providing:
//   value_type, label_type
//   static bool leq(value, value)
//   static value_type apply(label, value)
//   static bool is_top(value)
// plus the property tags (all constexpr bool):
//   kTotal, kHasTop, kOneClass,            — order shape
//   kM, kN, kC,                            — Fig. 2 (global optima)
//   kNd, kInc, kSInc, kTFix                — Fig. 3 (+ refinements)
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <utility>
#include <variant>

namespace mrt::alg {

template <typename A>
concept StaticOrderTransform = requires(const typename A::value_type& v,
                                        const typename A::label_type& l) {
  { A::leq(v, v) } -> std::convertible_to<bool>;
  { A::apply(l, v) } -> std::convertible_to<typename A::value_type>;
  { A::is_top(v) } -> std::convertible_to<bool>;
  { A::kTotal } -> std::convertible_to<bool>;
  { A::kHasTop } -> std::convertible_to<bool>;
  { A::kOneClass } -> std::convertible_to<bool>;
  { A::kM } -> std::convertible_to<bool>;
  { A::kN } -> std::convertible_to<bool>;
  { A::kC } -> std::convertible_to<bool>;
  { A::kNd } -> std::convertible_to<bool>;
  { A::kInc } -> std::convertible_to<bool>;
  { A::kSInc } -> std::convertible_to<bool>;
  { A::kTFix } -> std::convertible_to<bool>;
};

/// Derived comparison helpers shared by all static algebras.
template <StaticOrderTransform A>
constexpr bool lt(const typename A::value_type& a,
                  const typename A::value_type& b) {
  return A::leq(a, b) && !A::leq(b, a);
}

template <StaticOrderTransform A>
constexpr bool equiv(const typename A::value_type& a,
                     const typename A::value_type& b) {
  return A::leq(a, b) && A::leq(b, a);
}

// ---------------------------------------------------------------------------
// Base algebras
// ---------------------------------------------------------------------------

/// (ℕ∪{∞}, ≤, {+c | c ≥ 1}): shortest paths; ⊤ = ∞ (sentinel).
struct ShortestPath {
  using value_type = std::uint32_t;
  using label_type = std::uint32_t;
  static constexpr value_type kInf = std::numeric_limits<value_type>::max();

  static constexpr bool leq(value_type a, value_type b) { return a <= b; }
  static constexpr value_type apply(label_type c, value_type v) {
    return v >= kInf - c ? kInf : v + c;
  }
  static constexpr bool is_top(value_type v) { return v == kInf; }

  static constexpr bool kTotal = true, kHasTop = true, kOneClass = false;
  static constexpr bool kM = true;   // a<=b => a+c <= b+c
  static constexpr bool kN = true;   // +c injective below saturation window
  static constexpr bool kC = false;
  static constexpr bool kNd = true;  // a <= a+c, c >= 1
  static constexpr bool kInc = true; // strict below ∞ (labels >= 1)
  static constexpr bool kSInc = false;  // ∞ is fixed
  static constexpr bool kTFix = true;
};

/// (ℕ∪{∞}, ≥, {min(·,c)}): widest paths; ⊤ = 0 (zero capacity).
struct WidestPath {
  using value_type = std::uint32_t;
  using label_type = std::uint32_t;
  static constexpr value_type kUnlimited =
      std::numeric_limits<value_type>::max();

  static constexpr bool leq(value_type a, value_type b) { return a >= b; }
  static constexpr value_type apply(label_type c, value_type v) {
    return v < c ? v : c;
  }
  static constexpr bool is_top(value_type v) { return v == 0; }

  static constexpr bool kTotal = true, kHasTop = true, kOneClass = false;
  static constexpr bool kM = true;
  static constexpr bool kN = false;  // min(c,a) = min(c,b) with a != b
  static constexpr bool kC = false;
  static constexpr bool kNd = true;
  static constexpr bool kInc = false;  // min(a, unlimited) = a
  static constexpr bool kSInc = false;
  static constexpr bool kTFix = true;  // min(0, c) = 0
};

/// Hop count: shortest path whose only label is +1.
struct HopCount : ShortestPath {
  struct Unit {};
  using label_type = Unit;
  static constexpr value_type apply(Unit, value_type v) {
    return ShortestPath::apply(1, v);
  }
  using ShortestPath::is_top;
  using ShortestPath::leq;
};

/// Link reliability ([0,1], ≥, {·c | 0 < c < 1}); ⊤ = 0.
struct Reliability {
  using value_type = double;
  using label_type = double;

  static constexpr bool leq(value_type a, value_type b) { return a >= b; }
  static constexpr value_type apply(label_type c, value_type v) {
    return c * v;
  }
  static constexpr bool is_top(value_type v) { return v == 0.0; }

  static constexpr bool kTotal = true, kHasTop = true, kOneClass = false;
  static constexpr bool kM = true;
  static constexpr bool kN = true;  // c > 0
  static constexpr bool kC = false;
  static constexpr bool kNd = true;   // c <= 1
  static constexpr bool kInc = true;  // c < 1, strict below 0
  static constexpr bool kSInc = false;
  static constexpr bool kTFix = true;
};

// ---------------------------------------------------------------------------
// Combinators: properties derived by the exact rules, at compile time
// ---------------------------------------------------------------------------

/// Lexicographic product S ⃗× T with the Theorem 4 / refined Theorem 5 rules
/// evaluated as constant expressions.
template <StaticOrderTransform S, StaticOrderTransform T>
struct Lex {
  using value_type = std::pair<typename S::value_type, typename T::value_type>;
  using label_type = std::pair<typename S::label_type, typename T::label_type>;

  static constexpr bool leq(const value_type& a, const value_type& b) {
    if (lt<S>(a.first, b.first)) return true;
    if (!equiv<S>(a.first, b.first)) return false;
    return T::leq(a.second, b.second);
  }
  static constexpr value_type apply(const label_type& l, const value_type& v) {
    return {S::apply(l.first, v.first), T::apply(l.second, v.second)};
  }
  static constexpr bool is_top(const value_type& v) {
    return S::is_top(v.first) && T::is_top(v.second);
  }

  static constexpr bool kTotal = S::kTotal && T::kTotal;
  static constexpr bool kHasTop = S::kHasTop && T::kHasTop;
  static constexpr bool kOneClass = S::kOneClass && T::kOneClass;
  // Theorem 4 (exact).
  static constexpr bool kM = S::kM && T::kM && (S::kN || T::kC);
  static constexpr bool kN = S::kN && T::kN;
  static constexpr bool kC = S::kC && T::kC;
  // Refined Theorem 5 (exact; DESIGN.md §1.1).
  static constexpr bool kSInc = S::kSInc || (S::kNd && T::kSInc);
  static constexpr bool kNd = S::kSInc || (S::kNd && T::kNd);
  static constexpr bool kInc =
      (S::kInc && (!S::kHasTop || T::kOneClass || (S::kTFix && T::kInc))) ||
      (S::kNd && T::kSInc);
  static constexpr bool kTFix =
      !(S::kHasTop && T::kHasTop) || (S::kTFix && T::kTFix);
};

/// Scoped product S ⊙ T (BGP-like regions). Labels are a variant:
/// inter-region arcs carry (f ∈ S, fresh t ∈ T); intra-region arcs carry
/// g ∈ T. Properties follow Theorem 6 via the same composition the dynamic
/// engine performs (lex/left/right/union), folded into closed form.
template <StaticOrderTransform S, StaticOrderTransform T>
struct Scoped {
  using value_type = std::pair<typename S::value_type, typename T::value_type>;
  struct Inter {
    typename S::label_type f;
    typename T::value_type originate;
  };
  struct Intra {
    typename T::label_type g;
  };
  using label_type = std::variant<Inter, Intra>;

  static constexpr bool leq(const value_type& a, const value_type& b) {
    return Lex<S, T>::leq(a, b);
  }
  static constexpr value_type apply(const label_type& l, const value_type& v) {
    if (const Inter* i = std::get_if<Inter>(&l)) {
      return {S::apply(i->f, v.first), i->originate};
    }
    const Intra& g = std::get<Intra>(l);
    return {v.first, T::apply(g.g, v.second)};
  }
  static constexpr bool is_top(const value_type& v) {
    return Lex<S, T>::is_top(v);
  }

  static constexpr bool kTotal = S::kTotal && T::kTotal;
  static constexpr bool kHasTop = S::kHasTop && T::kHasTop;
  static constexpr bool kOneClass = S::kOneClass && T::kOneClass;
  // Theorem 6: no side condition.
  static constexpr bool kM = S::kM && T::kM;
  // N(⊙) needs N of both arms; N(arm1) requires T to have no strictly
  // ordered pair, for which OneClass is a sound (conservative) witness.
  static constexpr bool kN = S::kN && T::kN && T::kOneClass;
  // C(⊙) needs C of the identity arm: only a one-class S could give it.
  static constexpr bool kC = S::kOneClass && T::kC;
  // Local optima via the two arms (⊤-aware; reduces to Thm 6's
  // ND ⟺ I(S) ∧ ND(T) for ⊤-free S):
  //   ND(arm1 = S ⃗× left(T)) = SI(S) ∨ (ND(S) ∧ OneClass(T))
  //   ND(arm2 = right(S) ⃗× T) = ND(T)
  static constexpr bool kSInc = false;  // κ_b(b) = b is never strict
  static constexpr bool kNd = (S::kSInc || (S::kNd && T::kOneClass)) && T::kNd;
  //   I(arm1) = I(S) ∧ (⊤-free(S) ∨ OneClass(T))    [I(left(T)) = OneClass(T)]
  //   I(arm2) = (OneClass(S) ∧ …) ∨ SI(T); SI(T) needs a ⊤-free T.
  static constexpr bool kInc =
      (S::kInc && (!S::kHasTop || T::kOneClass)) &&
      (S::kOneClass || T::kSInc);
  static constexpr bool kTFix =
      !(S::kHasTop && T::kHasTop) || (S::kTFix && T::kTFix && T::kOneClass);
};

/// A generic label-indexed value for the examples: smallest-of-two chooser.
template <StaticOrderTransform A>
constexpr typename A::value_type pick_best(const typename A::value_type& a,
                                           const typename A::value_type& b) {
  return A::leq(a, b) ? a : b;
}

}  // namespace mrt::alg
