// Generalized Dijkstra over a *static* order transform: the correctness
// conditions of the algorithm (total preference, monotone, nondecreasing)
// are enforced at compile time via the derived property tags — "the proof
// component" as a static_assert.
#pragma once

#include <optional>
#include <vector>

#include "mrt/algebra/static_algebra.hpp"
#include "mrt/graph/digraph.hpp"

namespace mrt::alg {

template <StaticOrderTransform A>
struct StaticRouting {
  std::vector<std::optional<typename A::value_type>> weight;
  std::vector<int> next_arc;
};

/// Single-destination computation with compile-time checked preconditions.
/// Use `dijkstra_unchecked` to run on algebras whose guarantees you accept
/// at your own risk (e.g. to demonstrate anomalies).
template <StaticOrderTransform A>
StaticRouting<A> dijkstra_unchecked(
    const Digraph& g, const std::vector<typename A::label_type>& labels,
    int dest, const typename A::value_type& origin) {
  const int n = g.num_nodes();
  StaticRouting<A> r;
  r.weight.assign(static_cast<std::size_t>(n), std::nullopt);
  r.next_arc.assign(static_cast<std::size_t>(n), -1);
  r.weight[static_cast<std::size_t>(dest)] = origin;
  std::vector<bool> settled(static_cast<std::size_t>(n), false);

  for (;;) {
    int best = -1;
    for (int v = 0; v < n; ++v) {
      if (settled[static_cast<std::size_t>(v)] ||
          !r.weight[static_cast<std::size_t>(v)]) {
        continue;
      }
      if (best < 0 || lt<A>(*r.weight[static_cast<std::size_t>(v)],
                            *r.weight[static_cast<std::size_t>(best)])) {
        best = v;
      }
    }
    if (best < 0) break;
    settled[static_cast<std::size_t>(best)] = true;
    const auto& wb = *r.weight[static_cast<std::size_t>(best)];

    for (int id : g.in_arcs(best)) {
      const int u = g.arc(id).src;
      if (settled[static_cast<std::size_t>(u)]) continue;
      typename A::value_type cand =
          A::apply(labels[static_cast<std::size_t>(id)], wb);
      auto& wu = r.weight[static_cast<std::size_t>(u)];
      if (!wu || lt<A>(cand, *wu)) {
        wu = std::move(cand);
        r.next_arc[static_cast<std::size_t>(u)] = id;
      }
    }
  }
  return r;
}

template <StaticOrderTransform A>
StaticRouting<A> dijkstra(const Digraph& g,
                          const std::vector<typename A::label_type>& labels,
                          int dest, const typename A::value_type& origin) {
  static_assert(A::kTotal,
                "generalized Dijkstra needs a total preference order; use "
                "the min-set solver for partial orders");
  static_assert(A::kM,
                "algebra is not monotone (Theorem 4): Dijkstra would return "
                "suboptimal routes — restructure with scoped() or reorder "
                "the lexicographic factors");
  static_assert(A::kNd,
                "algebra is not nondecreasing: greedy settling is unsound");
  return dijkstra_unchecked<A>(g, labels, dest, origin);
}

}  // namespace mrt::alg
