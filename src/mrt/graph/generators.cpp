#include "mrt/graph/generators.hpp"

#include <numeric>

#include "mrt/support/require.hpp"

namespace mrt {
namespace {

void add_both(Digraph& g, int u, int v) {
  g.add_arc(u, v);
  g.add_arc(v, u);
}

// Bidirectional random spanning tree over the given node ids.
void random_tree(Rng& rng, Digraph& g, const std::vector<int>& nodes) {
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    const int parent =
        nodes[static_cast<std::size_t>(rng.below(i))];
    add_both(g, nodes[i], parent);
  }
}

}  // namespace

Digraph line(int n) {
  MRT_REQUIRE(n >= 1);
  Digraph g(n);
  for (int i = 0; i + 1 < n; ++i) add_both(g, i, i + 1);
  return g;
}

Digraph ring(int n) {
  MRT_REQUIRE(n >= 3);
  Digraph g(n);
  for (int i = 0; i < n; ++i) add_both(g, i, (i + 1) % n);
  return g;
}

Digraph grid(int w, int h) {
  MRT_REQUIRE(w >= 1 && h >= 1);
  Digraph g(w * h);
  auto id = [w](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) add_both(g, id(x, y), id(x + 1, y));
      if (y + 1 < h) add_both(g, id(x, y), id(x, y + 1));
    }
  }
  return g;
}

Digraph complete(int n) {
  MRT_REQUIRE(n >= 1);
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = 0; v < n; ++v) {
      if (u != v) g.add_arc(u, v);
    }
  }
  return g;
}

Digraph gnp(Rng& rng, int n, double p, bool symmetric) {
  MRT_REQUIRE(n >= 1 && p >= 0.0 && p <= 1.0);
  Digraph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = symmetric ? u + 1 : 0; v < n; ++v) {
      if (u == v) continue;
      if (rng.chance(p)) {
        if (symmetric) {
          add_both(g, u, v);
        } else {
          g.add_arc(u, v);
        }
      }
    }
  }
  return g;
}

Digraph random_connected(Rng& rng, int n, int extra_arcs) {
  MRT_REQUIRE(n >= 1 && extra_arcs >= 0);
  Digraph g(n);
  std::vector<int> nodes(static_cast<std::size_t>(n));
  std::iota(nodes.begin(), nodes.end(), 0);
  random_tree(rng, g, nodes);
  for (int k = 0; k < extra_arcs; ++k) {
    const int u = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    const int v = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
    if (u != v && !g.has_arc(u, v)) add_both(g, u, v);
  }
  return g;
}

RegionTopology regions_topology(Rng& rng, int regions, int per_region,
                                int extra_backbone_arcs) {
  MRT_REQUIRE(regions >= 1 && per_region >= 1);
  RegionTopology topo;
  topo.g = Digraph(regions * per_region);
  topo.region.resize(static_cast<std::size_t>(regions * per_region));

  // Intra-region: a random tree plus one extra arc per region when possible.
  for (int r = 0; r < regions; ++r) {
    std::vector<int> members;
    for (int i = 0; i < per_region; ++i) {
      const int v = r * per_region + i;
      topo.region[static_cast<std::size_t>(v)] = r;
      members.push_back(v);
    }
    random_tree(rng, topo.g, members);
    if (per_region >= 3) {
      const int a = members[static_cast<std::size_t>(
          rng.below(members.size()))];
      const int b = members[static_cast<std::size_t>(
          rng.below(members.size()))];
      if (a != b && !topo.g.has_arc(a, b)) add_both(topo.g, a, b);
    }
  }

  // Inter-region backbone: connect region r to region r-1 through random
  // border nodes (a tree over regions), plus extra shortcut links.
  auto border = [&](int r) {
    return r * per_region + static_cast<int>(rng.below(
               static_cast<std::uint64_t>(per_region)));
  };
  for (int r = 1; r < regions; ++r) {
    add_both(topo.g, border(r), border(static_cast<int>(rng.below(
                                    static_cast<std::uint64_t>(r)))));
  }
  for (int k = 0; k < extra_backbone_arcs; ++k) {
    const int r1 = static_cast<int>(rng.below(static_cast<std::uint64_t>(regions)));
    const int r2 = static_cast<int>(rng.below(static_cast<std::uint64_t>(regions)));
    if (r1 == r2) continue;
    const int a = border(r1);
    const int b = border(r2);
    if (!topo.g.has_arc(a, b)) add_both(topo.g, a, b);
  }
  return topo;
}

}  // namespace mrt
