// Graphviz export for topologies and routing solutions.
#pragma once

#include <string>
#include <vector>

#include "mrt/graph/digraph.hpp"

namespace mrt {

struct DotOptions {
  std::vector<std::string> node_labels;  ///< optional, indexed by node
  std::vector<std::string> arc_labels;   ///< optional, indexed by arc id
  std::vector<int> highlight_arcs;       ///< drawn bold (e.g. chosen next hops)
  std::string graph_name = "G";
};

/// Renders the digraph in DOT syntax.
std::string to_dot(const Digraph& g, const DotOptions& opts = {});

}  // namespace mrt
