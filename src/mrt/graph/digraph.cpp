#include "mrt/graph/digraph.hpp"

#include <deque>

#include "mrt/support/require.hpp"

namespace mrt {

Digraph::Digraph(int num_nodes) {
  MRT_REQUIRE(num_nodes >= 0);
  out_.resize(static_cast<std::size_t>(num_nodes));
  in_.resize(static_cast<std::size_t>(num_nodes));
}

Digraph::Digraph(const Digraph& o)
    : arcs_(o.arcs_),
      out_(o.out_),
      in_(o.in_),
      endpoint_index_(o.endpoint_index_) {}

Digraph& Digraph::operator=(const Digraph& o) {
  if (this != &o) {
    arcs_ = o.arcs_;
    out_ = o.out_;
    in_ = o.in_;
    endpoint_index_ = o.endpoint_index_;
    csr_built_.store(false, std::memory_order_release);
  }
  return *this;
}

void Digraph::check_node(int u) const {
  MRT_REQUIRE(u >= 0 && u < num_nodes());
}

int Digraph::add_arc(int u, int v) {
  check_node(u);
  check_node(v);
  const int id = num_arcs();
  arcs_.push_back(Arc{u, v});
  out_[static_cast<std::size_t>(u)].push_back(id);
  in_[static_cast<std::size_t>(v)].push_back(id);
  endpoint_index_.insert(endpoint_key(u, v));
  csr_built_.store(false, std::memory_order_release);
  return id;
}

void Digraph::build_csr() const {
  std::lock_guard<std::mutex> lock(csr_mu_);
  if (csr_built_.load(std::memory_order_relaxed)) return;
  const std::size_t n = out_.size();
  const std::size_t m = arcs_.size();
  auto fill = [&](const std::vector<std::vector<int>>& adj, bool heads_dst,
                  CsrAdjacency& csr) {
    csr.offset.assign(n + 1, 0);
    csr.arc.clear();
    csr.arc.reserve(m);
    csr.head.clear();
    csr.head.reserve(m);
    for (std::size_t u = 0; u < n; ++u) {
      csr.offset[u] = static_cast<int>(csr.arc.size());
      for (int id : adj[u]) {
        csr.arc.push_back(id);
        const Arc& a = arcs_[static_cast<std::size_t>(id)];
        csr.head.push_back(heads_dst ? a.dst : a.src);
      }
    }
    csr.offset[n] = static_cast<int>(csr.arc.size());
  };
  fill(out_, /*heads_dst=*/true, csr_out_);
  fill(in_, /*heads_dst=*/false, csr_in_);
  csr_built_.store(true, std::memory_order_release);
}

const CsrAdjacency& Digraph::csr_out() const {
  if (!csr_built_.load(std::memory_order_acquire)) build_csr();
  return csr_out_;
}

const CsrAdjacency& Digraph::csr_in() const {
  if (!csr_built_.load(std::memory_order_acquire)) build_csr();
  return csr_in_;
}

const Arc& Digraph::arc(int id) const {
  MRT_REQUIRE(id >= 0 && id < num_arcs());
  return arcs_[static_cast<std::size_t>(id)];
}

const std::vector<int>& Digraph::out_arcs(int u) const {
  check_node(u);
  return out_[static_cast<std::size_t>(u)];
}

const std::vector<int>& Digraph::in_arcs(int u) const {
  check_node(u);
  return in_[static_cast<std::size_t>(u)];
}

bool Digraph::has_arc(int u, int v) const {
  check_node(u);
  check_node(v);
  return endpoint_index_.count(endpoint_key(u, v)) > 0;
}

Digraph Digraph::reversed() const {
  Digraph r(num_nodes());
  for (const Arc& a : arcs_) r.add_arc(a.dst, a.src);
  return r;
}

std::vector<bool> Digraph::reachable_from(int src) const {
  check_node(src);
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes()), false);
  std::deque<int> queue{src};
  seen[static_cast<std::size_t>(src)] = true;
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (int id : out_arcs(u)) {
      const int v = arc(id).dst;
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = true;
        queue.push_back(v);
      }
    }
  }
  return seen;
}

}  // namespace mrt
