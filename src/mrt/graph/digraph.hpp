// Directed-graph substrate for the routing layer.
//
// Nodes are dense indices 0..n-1; arcs are stored once and indexed, with
// per-node out- and in-adjacency (arc id lists). Arc payloads (labels,
// weights) live in parallel arrays owned by the layers above.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace mrt {

struct Arc {
  int src = -1;
  int dst = -1;
};

class Digraph {
 public:
  explicit Digraph(int num_nodes);

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_arcs() const { return static_cast<int>(arcs_.size()); }

  /// Adds the arc (u, v); returns its id. Parallel arcs are allowed.
  int add_arc(int u, int v);

  const Arc& arc(int id) const;
  /// Ids of arcs leaving / entering `u`.
  const std::vector<int>& out_arcs(int u) const;
  const std::vector<int>& in_arcs(int u) const;

  /// O(1) expected: answered from a hashed endpoint-pair index maintained
  /// by add_arc, not by scanning the adjacency list (generators probe this
  /// densely while building random graphs).
  bool has_arc(int u, int v) const;

  /// The graph with every arc reversed (arc ids preserved).
  Digraph reversed() const;

  /// Nodes reachable from `src` along arcs.
  std::vector<bool> reachable_from(int src) const;

 private:
  void check_node(int u) const;

  static std::uint64_t endpoint_key(int u, int v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  std::unordered_set<std::uint64_t> endpoint_index_;  // (src, dst) pairs
};

}  // namespace mrt
