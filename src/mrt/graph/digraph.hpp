// Directed-graph substrate for the routing layer.
//
// Nodes are dense indices 0..n-1; arcs are stored once and indexed, with
// per-node out- and in-adjacency (arc id lists). Arc payloads (labels,
// weights) live in parallel arrays owned by the layers above.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace mrt {

struct Arc {
  int src = -1;
  int dst = -1;
};

/// A compressed-sparse-row view of one adjacency direction: arc ids (and the
/// far endpoints) of node u live in `arc[offset[u]..offset[u+1])`, in the
/// same ascending-arc-id order as the out_arcs()/in_arcs() lists. One flat
/// index chase per neighbour instead of two pointer hops through
/// vector<vector<int>> — the iteration shape of every batched hot loop
/// (mrt::rib sweeps, bellman rows, the simulator's flood/withdraw scans).
struct CsrAdjacency {
  std::vector<int> offset;  ///< num_nodes + 1 prefix offsets
  std::vector<int> arc;     ///< arc ids, grouped by node
  std::vector<int> head;    ///< far endpoint of arc[i] (dst for out, src for in)

  int begin(int u) const { return offset[static_cast<std::size_t>(u)]; }
  int end(int u) const { return offset[static_cast<std::size_t>(u) + 1]; }
};

class Digraph {
 public:
  explicit Digraph(int num_nodes);
  Digraph(const Digraph& o);
  Digraph& operator=(const Digraph& o);

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_arcs() const { return static_cast<int>(arcs_.size()); }

  /// Adds the arc (u, v); returns its id. Parallel arcs are allowed.
  int add_arc(int u, int v);

  const Arc& arc(int id) const;
  /// Ids of arcs leaving / entering `u`.
  const std::vector<int>& out_arcs(int u) const;
  const std::vector<int>& in_arcs(int u) const;

  /// O(1) expected: answered from a hashed endpoint-pair index maintained
  /// by add_arc, not by scanning the adjacency list (generators probe this
  /// densely while building random graphs).
  bool has_arc(int u, int v) const;

  /// CSR views of the out-/in-adjacency, built once on first use and cached
  /// until the next add_arc (which invalidates them). Safe to request from
  /// multiple threads on a graph nobody is mutating — the build is guarded;
  /// mutation, as everywhere on Digraph, is single-threaded. Entry order per
  /// node matches out_arcs()/in_arcs() (ascending arc id).
  const CsrAdjacency& csr_out() const;
  const CsrAdjacency& csr_in() const;

  /// The graph with every arc reversed (arc ids preserved).
  Digraph reversed() const;

  /// Nodes reachable from `src` along arcs.
  std::vector<bool> reachable_from(int src) const;

 private:
  void check_node(int u) const;
  void build_csr() const;

  static std::uint64_t endpoint_key(int u, int v) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
           static_cast<std::uint32_t>(v);
  }

  std::vector<Arc> arcs_;
  std::vector<std::vector<int>> out_;
  std::vector<std::vector<int>> in_;
  std::unordered_set<std::uint64_t> endpoint_index_;  // (src, dst) pairs

  // Cached CSR views. csr_built_ is the publish flag (acquire/release around
  // the guarded build); add_arc resets it, so a stale view is never returned.
  mutable std::mutex csr_mu_;
  mutable std::atomic<bool> csr_built_{false};
  mutable CsrAdjacency csr_out_;
  mutable CsrAdjacency csr_in_;
};

}  // namespace mrt
