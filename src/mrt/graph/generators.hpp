// Topology generators: deterministic shapes plus seeded random families,
// including the two-level region topology used to exercise the scoped
// product (BGP-like autonomous systems / OSPF-like areas).
#pragma once

#include "mrt/graph/digraph.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

/// 0 → 1 → … → n-1 plus reverse arcs (a bidirectional path).
Digraph line(int n);
/// A bidirectional cycle on n nodes.
Digraph ring(int n);
/// A w×h grid with bidirectional arcs.
Digraph grid(int w, int h);
/// Complete digraph (all ordered pairs).
Digraph complete(int n);

/// Directed G(n, p). `symmetric` adds each arc in both directions.
Digraph gnp(Rng& rng, int n, double p, bool symmetric);

/// A random strongly connected graph: bidirectional random spanning tree
/// plus `extra_arcs` random arcs.
Digraph random_connected(Rng& rng, int n, int extra_arcs);

/// A two-level "internet": `regions` clusters of `per_region` nodes, each
/// cluster internally connected, plus a connected inter-region backbone of
/// border nodes. `region[v]` maps nodes to clusters; an arc is inter-region
/// iff its endpoints' regions differ.
struct RegionTopology {
  Digraph g{0};
  std::vector<int> region;
  bool inter_region(int arc_id) const {
    const Arc& a = g.arc(arc_id);
    return region[static_cast<std::size_t>(a.src)] !=
           region[static_cast<std::size_t>(a.dst)];
  }
};

RegionTopology regions_topology(Rng& rng, int regions, int per_region,
                                int extra_backbone_arcs = 2);

}  // namespace mrt
