#include "mrt/graph/dot.hpp"

#include <algorithm>
#include <sstream>

namespace mrt {

std::string to_dot(const Digraph& g, const DotOptions& opts) {
  std::ostringstream out;
  out << "digraph " << opts.graph_name << " {\n";
  for (int v = 0; v < g.num_nodes(); ++v) {
    out << "  n" << v;
    if (static_cast<std::size_t>(v) < opts.node_labels.size()) {
      out << " [label=\"" << opts.node_labels[static_cast<std::size_t>(v)]
          << "\"]";
    }
    out << ";\n";
  }
  for (int id = 0; id < g.num_arcs(); ++id) {
    const Arc& a = g.arc(id);
    out << "  n" << a.src << " -> n" << a.dst;
    const bool bold =
        std::find(opts.highlight_arcs.begin(), opts.highlight_arcs.end(),
                  id) != opts.highlight_arcs.end();
    const bool labeled = static_cast<std::size_t>(id) < opts.arc_labels.size();
    if (bold || labeled) {
      out << " [";
      if (labeled) {
        out << "label=\"" << opts.arc_labels[static_cast<std::size_t>(id)]
            << "\"";
      }
      if (bold) out << (labeled ? ", " : "") << "style=bold";
      out << "]";
    }
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace mrt
