// Seeded fault-injection plans for the asynchronous path-vector simulator.
//
// A FaultPlan is a finite list of timed faults — link flaps, per-arc message
// loss / delay-jitter / duplication windows, node crash+restart — generated
// deterministically from a seed and lowered onto a PathVectorSim before
// run(). Loss windows are paired with a Resync event at window end (the
// retransmission that real transports provide), so a converged post-fault
// state is required to be coherent: the chaos oracles treat any stale RIB
// surviving quiescence as a protocol bug, not a fault artifact.
#pragma once

#include <string>
#include <vector>

#include "mrt/sim/path_vector.hpp"

namespace mrt::chaos {

/// One timed fault, already bound to a concrete arc or node.
struct Fault {
  enum class Kind : unsigned char {
    LinkFlap,   ///< arc down at `at`, back up at `at + duration`; a
                ///< zero-length flap is an explicit no-op
    Loss,       ///< deliveries on arc lost w.p. `p` during the window
    Jitter,     ///< sends on arc stretched by extra_delay + U[0, jitter)
    Duplicate,  ///< sends on arc duplicated w.p. `p` during the window
    Crash,      ///< node down at `at`, restarted at `at + duration`
  };
  Kind kind = Kind::LinkFlap;
  int arc = -1;   ///< target arc (all kinds except Crash)
  int node = -1;  ///< target node (Crash)
  double at = 0.0;
  double duration = 0.0;
  double p = 0.0;           ///< Loss / Duplicate probability
  double extra_delay = 0.0; ///< Jitter: deterministic stretch
  double jitter = 0.0;      ///< Jitter: random stretch bound

  std::string describe() const;
};

struct FaultPlan {
  std::uint64_t seed = 0;  ///< generation provenance
  std::vector<Fault> faults;

  /// Lowers every fault onto the simulator (schedule_* / add_arc_fault).
  /// Must be called before sim.run().
  void apply(PathVectorSim& sim) const;

  long count(Fault::Kind k) const;
  std::string describe() const;
};

/// Shape of the random plans a campaign draws.
struct FaultPlanConfig {
  int min_faults = 0;
  int max_faults = 6;
  /// Fault onsets are drawn uniformly in [t0, t0 + horizon).
  double t0 = 5.0;
  double horizon = 60.0;
  /// Durations are drawn uniformly in (0, max_duration].
  double max_duration = 20.0;
  /// Loss / duplication probabilities are drawn in [0.1, max_p].
  double max_p = 0.9;
  /// Jitter stretches are drawn in (0, max_stretch].
  double max_stretch = 5.0;
  bool allow_crashes = true;
  /// Whether the destination itself may crash (withdraw-the-world runs).
  bool crash_dest = false;
};

/// A deterministic random plan for `net`/`dest` from `seed`. Equal inputs
/// give byte-identical plans on every platform and thread count.
FaultPlan random_fault_plan(std::uint64_t seed, const LabeledGraph& net,
                            int dest, const FaultPlanConfig& cfg = {});

}  // namespace mrt::chaos
