// Differential convergence oracles: after a faulted simulator run reaches
// quiescence, cross-check the protocol outcome against the algebraic ground
// truth on the *surviving* topology.
//
//   stability     — the routing is a local optimum (Bellman fixed point) of
//                   the surviving subgraph; crashed nodes carry no state.
//   extension     — every route is the exact extension of the next hop's
//                   current route over an alive arc (no stale-RIB ghosts).
//   reachability  — nodes with no surviving path to an up destination have
//                   withdrawn; a crashed destination withdraws everywhere.
//   global        — when the algebra is monotone (M) and nondecreasing (ND),
//                   local optima are global optima, so the converged weights
//                   must be ≲-equivalent to generalized Dijkstra's solution
//                   on the surviving subgraph (kleene_closure agrees with
//                   dijkstra by EXP-PERF/test_closure, so one solver serves
//                   as the closure-side witness too).
//
// Divergent runs (event cap hit) get no oracle verdicts — divergence itself
// is the observation, and the campaign scores it against the scenario's
// expectation.
#pragma once

#include "mrt/dyn/solver.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt::chaos {

struct OracleVerdict {
  bool checked = false;  ///< oracle applicable and evaluated
  bool pass = true;
  std::string detail;  ///< first violation, empty when passing
};

struct OracleReport {
  bool converged = false;
  OracleVerdict stability;
  OracleVerdict extension;
  OracleVerdict reachability;
  OracleVerdict global;

  bool all_pass() const {
    return stability.pass && extension.pass && reachability.pass &&
           global.pass;
  }
  /// First failing oracle's name + detail (empty when all pass).
  std::string first_failure() const;
};

struct OracleOptions {
  bool drop_top_routes = false;  ///< must mirror SimOptions::drop_top_routes
  /// Run the global-agreement oracle (caller asserts the algebra is M + ND;
  /// run_campaign derives this from the checker once per scenario).
  bool check_global = false;
  /// Optional compiled weight engine for the scenario's algebra: the global
  /// oracle then solves the surviving subgraph on the flat path. The verdict
  /// is identical either way (compiled solvers are differentially checked
  /// against boxed); only the wall clock changes.
  const compile::WeightEngine* engine = nullptr;
  /// Optional solved baseline on the *unfaulted* network. When present (and
  /// dyn::enabled()), the global oracle derives its ground truth by cloning
  /// the baseline and replaying the run's surviving-topology delta through
  /// Solver::update() — incremental work proportional to the fault's blast
  /// radius instead of a fresh solve per run. Verdicts are identical to the
  /// cold path (that equivalence is what the dyn differential suite pins).
  const Solver* baseline = nullptr;
};

/// The surviving subgraph's arc/node masks, as the sim reported them.
SurvivingTopology surviving_topology(const SimResult& res);

/// Evaluates every applicable oracle for a quiesced run.
OracleReport check_oracles(const OrderTransform& alg, const LabeledGraph& net,
                           int dest, const Value& origin, const SimResult& res,
                           const OracleOptions& opts = {});

/// The oracle-during-the-run mode: checks the stability oracle at *every*
/// quiescent point the run recorded (SimOptions::record_quiescent), not just
/// the end state — each point's routing must be a local optimum of that
/// point's surviving topology. Applies to divergent runs too (the points
/// before the event cap are real stable states). Caveat: a message-loss
/// window leaves a genuinely stale RIB-in until its resync repairs it, so
/// scenarios with loss faults should keep this mode off — the transient
/// points it would refute are stale by construction, not by bug.
OracleVerdict check_quiescent_points(const OrderTransform& alg,
                                     const LabeledGraph& net, int dest,
                                     const Value& origin, const SimResult& res,
                                     bool drop_top_routes = false);

}  // namespace mrt::chaos
