#include "mrt/chaos/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

#include "mrt/support/strings.hpp"

namespace mrt::chaos {
namespace {

std::string fmt_time(double t) {
  // Times come from unit() draws; fixed precision keeps describe() stable.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", t);
  return buf;
}

}  // namespace

std::string Fault::describe() const {
  switch (kind) {
    case Kind::LinkFlap:
      return "flap(arc " + std::to_string(arc) + " @" + fmt_time(at) + " for " +
             fmt_time(duration) + ")";
    case Kind::Loss:
      return "loss(arc " + std::to_string(arc) + " @" + fmt_time(at) + " for " +
             fmt_time(duration) + " p=" + fmt_time(p) + ")";
    case Kind::Jitter:
      return "jitter(arc " + std::to_string(arc) + " @" + fmt_time(at) +
             " for " + fmt_time(duration) + " +" + fmt_time(extra_delay) +
             "+U[0," + fmt_time(jitter) + "))";
    case Kind::Duplicate:
      return "dup(arc " + std::to_string(arc) + " @" + fmt_time(at) + " for " +
             fmt_time(duration) + " p=" + fmt_time(p) + ")";
    case Kind::Crash:
      return "crash(node " + std::to_string(node) + " @" + fmt_time(at) +
             " for " + fmt_time(duration) + ")";
  }
  return "?";
}

void FaultPlan::apply(PathVectorSim& sim) const {
  for (const Fault& f : faults) {
    switch (f.kind) {
      case Fault::Kind::LinkFlap:
        // A zero-length flap is an explicit no-op. Scheduling both events
        // would put a down/up pair at the same timestamp, tie-broken only by
        // heap insertion order — the Crash case below already guards the
        // same way. (random_fault_plan never draws duration 0, so this only
        // affects hand-built plans.)
        if (f.duration > 0.0) {
          sim.schedule_link_down(f.at, f.arc);
          sim.schedule_link_up(f.at + f.duration, f.arc);
        }
        break;
      case Fault::Kind::Loss: {
        ArcFault af;
        af.arc = f.arc;
        af.from = f.at;
        af.until = f.at + f.duration;
        af.loss_p = f.p;
        sim.add_arc_fault(af);
        // The recovery retransmission: without it, a loss window that eats
        // the head's final advertisement would freeze a stale RIB forever
        // and convergence itself would become schedule luck.
        sim.schedule_resync(af.until, f.arc);
        break;
      }
      case Fault::Kind::Jitter: {
        ArcFault af;
        af.arc = f.arc;
        af.from = f.at;
        af.until = f.at + f.duration;
        af.extra_delay = f.extra_delay;
        af.jitter = f.jitter;
        sim.add_arc_fault(af);
        break;
      }
      case Fault::Kind::Duplicate: {
        ArcFault af;
        af.arc = f.arc;
        af.from = f.at;
        af.until = f.at + f.duration;
        af.dup_p = f.p;
        sim.add_arc_fault(af);
        break;
      }
      case Fault::Kind::Crash:
        sim.schedule_node_down(f.at, f.node);
        if (f.duration > 0.0) sim.schedule_node_up(f.at + f.duration, f.node);
        break;
    }
  }
}

long FaultPlan::count(Fault::Kind k) const {
  long n = 0;
  for (const Fault& f : faults) n += f.kind == k ? 1 : 0;
  return n;
}

std::string FaultPlan::describe() const {
  if (faults.empty()) return "(no faults)";
  std::vector<std::string> parts;
  parts.reserve(faults.size());
  for (const Fault& f : faults) parts.push_back(f.describe());
  return join(parts, ", ");
}

FaultPlan random_fault_plan(std::uint64_t seed, const LabeledGraph& net,
                            int dest, const FaultPlanConfig& cfg) {
  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  const int m = net.graph().num_arcs();
  const int n = net.num_nodes();
  if (m == 0) return plan;
  const int count = static_cast<int>(
      rng.range(cfg.min_faults, std::max(cfg.min_faults, cfg.max_faults)));
  for (int i = 0; i < count; ++i) {
    Fault f;
    // Crashes are rarer than arc-level faults: one kind out of six.
    const int kind_draw =
        static_cast<int>(rng.below(cfg.allow_crashes && n > 1 ? 6 : 5));
    f.at = cfg.t0 + rng.unit() * cfg.horizon;
    f.duration = (0.05 + 0.95 * rng.unit()) * cfg.max_duration;
    switch (kind_draw) {
      case 0:
      case 1:
        f.kind = Fault::Kind::LinkFlap;
        break;
      case 2:
        f.kind = Fault::Kind::Loss;
        f.p = 0.1 + rng.unit() * (cfg.max_p - 0.1);
        break;
      case 3:
        f.kind = Fault::Kind::Jitter;
        f.extra_delay = rng.unit() * cfg.max_stretch;
        f.jitter = rng.unit() * cfg.max_stretch;
        break;
      case 4:
        f.kind = Fault::Kind::Duplicate;
        f.p = 0.1 + rng.unit() * (cfg.max_p - 0.1);
        break;
      default:
        f.kind = Fault::Kind::Crash;
        break;
    }
    if (f.kind == Fault::Kind::Crash) {
      int node = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (node == dest && !cfg.crash_dest) node = (node + 1) % n;
      f.node = node;
    } else {
      f.arc = static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    }
    plan.faults.push_back(f);
  }
  return plan;
}

}  // namespace mrt::chaos
