// Fault-injection campaigns: thousands of seeded (scenario × fault-plan)
// simulator runs fanned out through mrt::par, each scored by the
// differential oracles, folded into a deterministic verdict table.
//
// Determinism contract: every run's fault plan and schedule derive from
// par::mix_seed(campaign seed, run index), runs accumulate through
// parallel_reduce (ascending chunk-order merge), and failure shrinking is
// sequential over the merged failure list — so the verdict table and the
// JSON report are byte-identical for every MRT_THREADS value.
#pragma once

#include <iosfwd>

#include "mrt/adv/adv.hpp"
#include "mrt/chaos/fault_plan.hpp"
#include "mrt/chaos/oracles.hpp"

namespace mrt::chaos {

/// Whether a scenario runs the global-agreement oracle. Auto asks the
/// finite-model checker: the oracle is enabled iff M and ND are proved
/// exhaustively (local optima = global optima needs both).
enum class GlobalCheck : unsigned char { Auto, On, Off };

struct CampaignScenario {
  std::string name;
  OrderTransform alg;
  LabeledGraph net{Digraph(1), {}};  ///< placeholder; assign a real topology
  int dest = 0;
  Value origin;
  /// Per-run options; `seed` is overridden with the run's derived seed.
  SimOptions sim;
  FaultPlanConfig faults;
  /// The schedule-adversary axis, orthogonal to the fault axis: every run of
  /// the scenario executes under this message-schedule policy (the policy's
  /// rng reseeds per run from the run seed). Default: the jittered FIFO.
  adv::ScheduleSpec schedule;
  /// When true, a run that hits the event cap fails the campaign. Set false
  /// for divergence-capable algebras (BAD GADGET), whose converged runs are
  /// still oracle-checked.
  bool expect_convergence = true;
  /// Minimum number of divergent runs the scenario must produce (use with
  /// expect_convergence = false to assert BAD GADGET actually misbehaves).
  long min_divergent = 0;
  GlobalCheck global = GlobalCheck::Auto;
  /// Oracle-during-the-run mode: record every quiescent instant of each run
  /// (SimOptions::record_quiescent is forced on) and require each one's
  /// routing to be a local optimum of its surviving topology — the stream of
  /// intermediate stable states is checked, not just the end state. Leave
  /// off for scenarios with message-loss faults: between a loss and its
  /// resync the RIB-in is genuinely stale and the transient quiescent state
  /// may legitimately not be optimal (see check_quiescent_points).
  bool oracle_during_run = false;
};

struct CampaignConfig {
  std::uint64_t seed = 1;
  long runs_per_scenario = 1000;
  std::size_t grain = 8;  ///< runs per parallel chunk
  /// Failing seeds are shrunk to locally-minimal fault plans (1-greedy
  /// delta debugging); at most this many examples are kept per scenario.
  bool shrink_failures = true;
  int max_failure_examples = 4;
};

/// Verdict of a single simulated run.
struct RunVerdict {
  bool converged = false;
  bool pass = false;
  bool accounting_ok = true;  ///< message-conservation identity held
  std::string detail;         ///< first failure ("" when passing)
  double finish_time = 0.0;
  SimStats stats;
  /// The run's convergence certificate. The theoretical bound is claimed
  /// only when the caller supplied an exhaustive ConvergenceProfile and the
  /// run's fault plan was empty; a BoundViolated verdict fails the run.
  adv::ConvergenceCertificate cert;
};

/// A failing run, kept as a reproducible example.
struct FailureCase {
  std::uint64_t seed = 0;
  bool diverged = false;
  std::string detail;
  std::string plan;  ///< the generated fault plan, FaultPlan::describe()
  std::size_t plan_size = 0;
  std::string shrunk;  ///< locally-minimal failing plan ("" if not shrunk)
  std::size_t shrunk_size = 0;
  /// Flight-recorder log of the shrunk repro: the shrunk plan is re-run once
  /// with the journal forced on and the drained records rendered here (one
  /// describe() line each), so a kept failure ships with its own causal
  /// event history. Empty when shrinking is disabled.
  std::string journal;
  std::size_t journal_events = 0;
};

struct ScenarioOutcome {
  std::string name;
  bool global_checked = false;
  bool expect_convergence = true;
  long min_divergent = 0;

  long runs = 0;
  long converged = 0;
  long diverged = 0;
  long oracle_failures = 0;      ///< converged runs refuted by an oracle
  long accounting_failures = 0;  ///< conservation-identity violations
  long faults_injected = 0;
  long messages_sent = 0;
  long deliveries = 0;
  /// Certificate aggregation: runs where the Daggitt–Griffin bound applied
  /// (exhaustively-increasing algebra, fault-free plan), how many violated
  /// it (a falsification — fails the scenario), and the worst activation
  /// round count observed across all runs.
  long bound_applicable = 0;
  long bound_violations = 0;
  long max_rounds = 0;
  double total_finish_time = 0.0;  ///< summed over converged runs
  std::vector<FailureCase> failures;

  bool pass() const {
    return oracle_failures == 0 && accounting_failures == 0 &&
           bound_violations == 0 && (!expect_convergence || diverged == 0) &&
           diverged >= min_divergent;
  }
};

struct CampaignReport {
  std::uint64_t seed = 0;
  long runs_per_scenario = 0;
  std::vector<ScenarioOutcome> scenarios;

  bool all_pass() const;
  /// Fixed-format text table; byte-identical across thread counts.
  std::string verdict_table() const;
  /// Full machine-readable report (same determinism guarantee).
  void write_json(std::ostream& out) const;
};

/// Runs one seeded fault plan against a scenario and scores it. Exposed for
/// the shrinker and the unit tests; run_campaign derives (seed, plan) pairs
/// and fans this out. `engine` (optional) routes the simulator and the
/// global oracle through the compiled flat kernels — the verdict is the
/// same either way. `baseline` (optional) is a solved Solver on the
/// unfaulted network; the global oracle then replays each run's fault
/// outcome through Solver::update() instead of solving cold (identical
/// verdicts, incremental work — see docs/DYN.md). `profile` (optional) is
/// the algebra's convergence profile; when present the run's certificate can
/// claim the theoretical bound (run_campaign computes it once per scenario).
RunVerdict run_one(const CampaignScenario& sc, std::uint64_t seed,
                   const FaultPlan& plan, bool check_global,
                   const compile::WeightEngine* engine = nullptr,
                   const Solver* baseline = nullptr,
                   const ConvergenceProfile* profile = nullptr);

/// Greedy 1-minimal shrink: repeatedly drops any single fault whose removal
/// keeps the run failing, until no single removal does.
FaultPlan shrink_plan(const CampaignScenario& sc, std::uint64_t seed,
                      FaultPlan plan, bool check_global,
                      const compile::WeightEngine* engine = nullptr,
                      const Solver* baseline = nullptr,
                      const ConvergenceProfile* profile = nullptr);

CampaignReport run_campaign(const std::vector<CampaignScenario>& scenarios,
                            const CampaignConfig& cfg = {});

}  // namespace mrt::chaos
