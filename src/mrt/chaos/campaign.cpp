#include "mrt/chaos/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <ostream>
#include <string>
#include <utility>

#include "mrt/core/checker.hpp"
#include "mrt/obs/json.hpp"
#include "mrt/obs/journal.hpp"
#include "mrt/obs/metrics.hpp"
#include "mrt/par/par.hpp"

namespace mrt::chaos {
namespace {

/// Decides the global-agreement oracle for a scenario. Auto requires an
/// exhaustive proof of both M and ND — a sampled verdict is not a theorem.
bool resolve_global(const CampaignScenario& sc) {
  switch (sc.global) {
    case GlobalCheck::On:
      return true;
    case GlobalCheck::Off:
      return false;
    case GlobalCheck::Auto:
      break;
  }
  const Checker chk;
  const CheckResult m = chk.prop(sc.alg, Prop::M_L);
  if (m.verdict != Tri::True || !m.exhaustive) return false;
  const CheckResult nd = chk.prop(sc.alg, Prop::ND_L);
  return nd.verdict == Tri::True && nd.exhaustive;
}

bool conservation_holds(const SimStats& s) {
  return s.messages_sent == s.deliveries + s.dropped_dead_arc +
                                s.dropped_injected_loss + s.in_flight_at_end;
}

long total_faults(const FaultPlan& p) {
  return static_cast<long>(p.faults.size());
}

/// Per-chunk accumulator for the parallel sweep. Merged in ascending chunk
/// order, so every aggregate — including the double sum — is independent of
/// the thread count.
struct Acc {
  long converged = 0;
  long diverged = 0;
  long oracle_failures = 0;
  long accounting_failures = 0;
  long faults_injected = 0;
  long messages_sent = 0;
  long deliveries = 0;
  long bound_applicable = 0;
  long bound_violations = 0;
  long max_rounds = 0;
  double total_finish_time = 0.0;
  std::vector<std::pair<long, std::uint64_t>> failing;  ///< (run idx, seed)
};

}  // namespace

RunVerdict run_one(const CampaignScenario& sc, std::uint64_t seed,
                   const FaultPlan& plan, bool check_global,
                   const compile::WeightEngine* engine,
                   const Solver* baseline, const ConvergenceProfile* profile) {
  SimOptions opts = sc.sim;
  opts.seed = seed;
  // Oracle-during-the-run: record every quiescent instant so each
  // intermediate stable state can be checked, not just the end state.
  // Recording consumes no RNG draws, so the schedule is unchanged.
  if (sc.oracle_during_run) opts.record_quiescent = true;
  PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts, engine);
  // The scenario's schedule adversary: the policy's own rng mixes its spec
  // seed with this run's seed at bind, so adversarial draws differ per run
  // but stay reproducible from (campaign seed, run index).
  const std::unique_ptr<Scheduler> sched = adv::make_scheduler(sc.schedule);
  sim.set_scheduler(sched.get());
  plan.apply(sim);
  const SimResult res = sim.run();

  RunVerdict v;
  v.converged = res.converged;
  v.finish_time = res.finish_time;
  v.stats = res.stats;
  v.accounting_ok = conservation_holds(res.stats);
  // Without a profile the certificate still records schedule class and
  // rounds, but never claims the theoretical bound (all-Unknown profile).
  v.cert = adv::make_certificate(
      profile != nullptr ? *profile : ConvergenceProfile{}, sc.schedule, seed,
      sc.net.num_nodes(), sc.net.graph().num_arcs(), res);
  const bool bound_violated =
      v.cert.verdict == adv::Verdict::BoundViolated;

  // Flight-recorder verdict, on the sim's own stream: aux 0 = pass,
  // 1 = diverged, 2 = conservation violated, 3 = oracle refuted,
  // 4 = certificate bound violated.
  const auto jverdict = [&](int outcome) {
    obs::jrecord(obs::Subsystem::Chaos, obs::EventKind::FaultOutcome,
                 sim.journal_stream(), -1,
                 static_cast<int>(plan.faults.size()), outcome, 0,
                 static_cast<std::uint64_t>(res.finish_time * 1e6));
  };

  if (!res.converged) {
    v.pass = !sc.expect_convergence && v.accounting_ok && !bound_violated;
    v.detail = !v.accounting_ok ? "accounting: conservation violated"
               : bound_violated ? "certificate: " + v.cert.describe()
                                : "diverged (event cap)";
    jverdict(!v.accounting_ok ? 2 : bound_violated ? 4 : (v.pass ? 0 : 1));
    return v;
  }
  if (!v.accounting_ok) {
    v.pass = false;
    v.detail = "accounting: conservation violated";
    jverdict(2);
    return v;
  }
  OracleOptions oo;
  oo.drop_top_routes = sc.sim.drop_top_routes;
  oo.check_global = check_global;
  oo.engine = engine;
  oo.baseline = baseline;
  const OracleReport rep =
      check_oracles(sc.alg, sc.net, sc.dest, sc.origin, res, oo);
  // Oracle-during-the-run: every recorded quiescent instant must be a local
  // optimum of its surviving topology, not just the end state. Scored as an
  // oracle failure, same as the end-state refutations.
  OracleVerdict qv;
  if (sc.oracle_during_run) {
    qv = check_quiescent_points(sc.alg, sc.net, sc.dest, sc.origin, res,
                                sc.sim.drop_top_routes);
  }
  v.pass = rep.all_pass() && qv.pass && !bound_violated;
  v.detail = !rep.all_pass() ? rep.first_failure()
             : !qv.pass
                 ? "stability(during-run): " + qv.detail
                 : (bound_violated ? "certificate: " + v.cert.describe() : "");
  jverdict((!rep.all_pass() || !qv.pass) ? 3 : bound_violated ? 4 : 0);
  return v;
}

FaultPlan shrink_plan(const CampaignScenario& sc, std::uint64_t seed,
                      FaultPlan plan, bool check_global,
                      const compile::WeightEngine* engine,
                      const Solver* baseline, const ConvergenceProfile* profile) {
  bool progress = true;
  while (progress && !plan.faults.empty()) {
    progress = false;
    for (std::size_t i = 0; i < plan.faults.size(); ++i) {
      FaultPlan cand = plan;
      cand.faults.erase(cand.faults.begin() + static_cast<std::ptrdiff_t>(i));
      if (!run_one(sc, seed, cand, check_global, engine, baseline, profile)
               .pass) {
        plan = std::move(cand);
        progress = true;
        break;  // restart the scan: indices shifted
      }
    }
  }
  return plan;
}

bool CampaignReport::all_pass() const {
  for (const ScenarioOutcome& s : scenarios) {
    if (!s.pass()) return false;
  }
  return true;
}

std::string CampaignReport::verdict_table() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line, "%-28s %6s %6s %6s %7s %6s %8s  %s\n",
                "scenario", "runs", "conv", "div", "oracle", "acct", "faults",
                "verdict");
  out += line;
  for (const ScenarioOutcome& s : scenarios) {
    std::snprintf(line, sizeof line,
                  "%-28s %6ld %6ld %6ld %7ld %6ld %8ld  %s\n", s.name.c_str(),
                  s.runs, s.converged, s.diverged, s.oracle_failures,
                  s.accounting_failures, s.faults_injected,
                  s.pass() ? "PASS" : "FAIL");
    out += line;
  }
  return out;
}

void CampaignReport::write_json(std::ostream& out) const {
  obs::JsonWriter w(out);
  w.begin_object();
  w.key("seed").value(static_cast<std::uint64_t>(seed));
  w.key("runs_per_scenario").value(static_cast<std::int64_t>(runs_per_scenario));
  w.key("all_pass").value(all_pass());
  w.key("scenarios").begin_array();
  for (const ScenarioOutcome& s : scenarios) {
    w.begin_object();
    w.key("name").value(s.name);
    w.key("pass").value(s.pass());
    w.key("global_checked").value(s.global_checked);
    w.key("expect_convergence").value(s.expect_convergence);
    w.key("runs").value(static_cast<std::int64_t>(s.runs));
    w.key("converged").value(static_cast<std::int64_t>(s.converged));
    w.key("diverged").value(static_cast<std::int64_t>(s.diverged));
    w.key("oracle_failures").value(static_cast<std::int64_t>(s.oracle_failures));
    w.key("accounting_failures")
        .value(static_cast<std::int64_t>(s.accounting_failures));
    w.key("faults_injected").value(static_cast<std::int64_t>(s.faults_injected));
    w.key("messages_sent").value(static_cast<std::int64_t>(s.messages_sent));
    w.key("deliveries").value(static_cast<std::int64_t>(s.deliveries));
    w.key("bound_applicable")
        .value(static_cast<std::int64_t>(s.bound_applicable));
    w.key("bound_violations")
        .value(static_cast<std::int64_t>(s.bound_violations));
    w.key("max_rounds").value(static_cast<std::int64_t>(s.max_rounds));
    w.key("mean_convergence_time")
        .value(s.converged > 0
                   ? s.total_finish_time / static_cast<double>(s.converged)
                   : 0.0);
    w.key("failures").begin_array();
    for (const FailureCase& f : s.failures) {
      w.begin_object();
      w.key("seed").value(static_cast<std::uint64_t>(f.seed));
      w.key("diverged").value(f.diverged);
      w.key("detail").value(f.detail);
      w.key("plan").value(f.plan);
      w.key("plan_size").value(static_cast<std::uint64_t>(f.plan_size));
      w.key("shrunk").value(f.shrunk);
      w.key("shrunk_size").value(static_cast<std::uint64_t>(f.shrunk_size));
      w.key("journal_events")
          .value(static_cast<std::uint64_t>(f.journal_events));
      w.key("journal").value(f.journal);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

CampaignReport run_campaign(const std::vector<CampaignScenario>& scenarios,
                            const CampaignConfig& cfg) {
  CampaignReport report;
  report.seed = cfg.seed;
  report.runs_per_scenario = cfg.runs_per_scenario;

  for (std::size_t si = 0; si < scenarios.size(); ++si) {
    const CampaignScenario& sc = scenarios[si];
    const bool check_global = resolve_global(sc);
    // One compilation per scenario; every run (and the shrinker) shares the
    // kernels. Falls back to boxed transparently when the algebra doesn't
    // compile or MRT_COMPILE=0.
    const compile::WeightEngine engine(sc.alg);
    // One unfaulted baseline per scenario: each run clones it and replays
    // its fault outcome through Solver::update(), so the per-run ground
    // truth costs the fault's blast radius, not a full solve. clone() is
    // const and every worker owns its copy — safe under parallel_reduce.
    std::unique_ptr<Solver> baseline;
    if (check_global) {
      baseline = dyn::make_solver(dyn::EngineKind::Dijkstra, sc.alg, &engine);
      baseline->solve(sc.net, sc.dest, sc.origin);
    }
    // One profile per scenario: every run's certificate embeds the same
    // Checker verdicts, so the bound is claimed (and falsifiable) exactly
    // when Inc_L was proved exhaustively.
    const ConvergenceProfile profile = convergence_profile(sc.alg);
    // Per-scenario seed stream, independent of scenario order in the list.
    const std::uint64_t sc_seed = par::mix_seed(cfg.seed, 0xC0DE0000ULL + si);
    const std::size_t runs = static_cast<std::size_t>(cfg.runs_per_scenario);

    const Acc acc = par::parallel_reduce<Acc>(
        runs, cfg.grain, Acc{},
        [&](std::size_t begin, std::size_t end, Acc& a) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::uint64_t seed = par::mix_seed(sc_seed, i);
            const FaultPlan plan =
                random_fault_plan(seed, sc.net, sc.dest, sc.faults);
            const RunVerdict v = run_one(sc, seed, plan, check_global, &engine,
                                         baseline.get(), &profile);
            a.converged += v.converged ? 1 : 0;
            a.diverged += v.converged ? 0 : 1;
            if (v.converged) a.total_finish_time += v.finish_time;
            if (!v.accounting_ok) ++a.accounting_failures;
            if (v.cert.bound >= 0) ++a.bound_applicable;
            if (v.cert.verdict == adv::Verdict::BoundViolated) {
              ++a.bound_violations;
            }
            a.max_rounds = std::max(a.max_rounds, v.cert.rounds);
            if (v.converged && v.accounting_ok && !v.pass &&
                v.cert.verdict != adv::Verdict::BoundViolated) {
              ++a.oracle_failures;
            }
            a.faults_injected += total_faults(plan);
            a.messages_sent += v.stats.messages_sent;
            a.deliveries += v.stats.deliveries;
            if (!v.pass) {
              a.failing.emplace_back(static_cast<long>(i), seed);
            }
          }
        },
        [&](Acc& into, Acc& from) {
          into.converged += from.converged;
          into.diverged += from.diverged;
          into.oracle_failures += from.oracle_failures;
          into.accounting_failures += from.accounting_failures;
          into.faults_injected += from.faults_injected;
          into.messages_sent += from.messages_sent;
          into.deliveries += from.deliveries;
          into.bound_applicable += from.bound_applicable;
          into.bound_violations += from.bound_violations;
          into.max_rounds = std::max(into.max_rounds, from.max_rounds);
          into.total_finish_time += from.total_finish_time;
          // Keep only the earliest examples; counts above already cover all.
          for (const auto& f : from.failing) {
            if (into.failing.size() <
                static_cast<std::size_t>(cfg.max_failure_examples)) {
              into.failing.push_back(f);
            }
          }
        });

    ScenarioOutcome out;
    out.name = sc.name;
    out.global_checked = check_global;
    out.expect_convergence = sc.expect_convergence;
    out.min_divergent = sc.min_divergent;
    out.runs = cfg.runs_per_scenario;
    out.converged = acc.converged;
    out.diverged = acc.diverged;
    out.oracle_failures = acc.oracle_failures;
    out.accounting_failures = acc.accounting_failures;
    out.faults_injected = acc.faults_injected;
    out.messages_sent = acc.messages_sent;
    out.deliveries = acc.deliveries;
    out.bound_applicable = acc.bound_applicable;
    out.bound_violations = acc.bound_violations;
    out.max_rounds = acc.max_rounds;
    out.total_finish_time = acc.total_finish_time;

    // Reproduce + shrink the kept failures, sequentially and in run order.
    for (const auto& [idx, seed] : acc.failing) {
      (void)idx;
      FaultPlan plan = random_fault_plan(seed, sc.net, sc.dest, sc.faults);
      const RunVerdict v = run_one(sc, seed, plan, check_global, &engine,
                                   baseline.get(), &profile);
      FailureCase fc;
      fc.seed = seed;
      fc.diverged = !v.converged;
      fc.detail = v.detail;
      fc.plan = plan.describe();
      fc.plan_size = plan.faults.size();
      if (cfg.shrink_failures) {
        const FaultPlan small = shrink_plan(sc, seed, std::move(plan),
                                            check_global, &engine,
                                            baseline.get(), &profile);
        fc.shrunk = small.describe();
        fc.shrunk_size = small.faults.size();
        // Attach the shrunk repro's flight-recorder log: re-run it once with
        // the journal forced on and render the drained records. This section
        // is sequential, so the drain-discard below only eats records this
        // campaign produced since the last drain.
        const bool was_on = obs::journal_enabled();
        obs::journal().drain();
        obs::set_journal_enabled(true);
        (void)run_one(sc, seed, small, check_global, &engine, baseline.get(),
                      &profile);
        obs::set_journal_enabled(was_on);
        const std::vector<obs::JournalRecord> recs = obs::journal().drain();
        fc.journal_events = recs.size();
        for (const obs::JournalRecord& r : recs) {
          fc.journal += r.describe();
          fc.journal += '\n';
        }
      }
      out.failures.push_back(std::move(fc));
    }

    if (obs::enabled()) {
      obs::Registry& reg = obs::registry();
      reg.counter("chaos.runs").add(static_cast<std::uint64_t>(out.runs));
      reg.counter("chaos.diverged")
          .add(static_cast<std::uint64_t>(out.diverged));
      reg.counter("chaos.oracle_failures")
          .add(static_cast<std::uint64_t>(out.oracle_failures));
      reg.counter("chaos.accounting_failures")
          .add(static_cast<std::uint64_t>(out.accounting_failures));
      reg.counter("chaos.faults_injected")
          .add(static_cast<std::uint64_t>(out.faults_injected));
      reg.counter("chaos.bound_applicable")
          .add(static_cast<std::uint64_t>(out.bound_applicable));
      reg.counter("chaos.bound_violations")
          .add(static_cast<std::uint64_t>(out.bound_violations));
    }
    report.scenarios.push_back(std::move(out));
  }
  return report;
}

}  // namespace mrt::chaos
