#include "mrt/chaos/oracles.hpp"

#include "mrt/routing/dijkstra.hpp"

namespace mrt::chaos {
namespace {

// The surviving subgraph as a standalone LabeledGraph (dead arcs dropped,
// node set preserved). Arc ids are renumbered, which is fine: the global
// oracle compares per-node weights only.
LabeledGraph alive_subgraph(const LabeledGraph& net,
                            const SurvivingTopology& topo) {
  Digraph g(net.num_nodes());
  ValueVec labels;
  for (int id = 0; id < net.graph().num_arcs(); ++id) {
    if (!topo.arc_ok(id)) continue;
    const Arc& a = net.graph().arc(id);
    if (!topo.node_ok(a.src) || !topo.node_ok(a.dst)) continue;
    g.add_arc(a.src, a.dst);
    labels.push_back(net.label(id));
  }
  return LabeledGraph(std::move(g), std::move(labels));
}

// Follows next_arc pointers from every routed node; a walk that fails to
// reach dest within n hops is a forwarding loop of mutually-supporting
// stale routes — the ghost the extension oracle exists to catch.
bool forwarding_reaches_dest(const LabeledGraph& net, const Routing& r,
                             int dest, std::string* why) {
  const int n = net.num_nodes();
  for (int u = 0; u < n; ++u) {
    if (!r.has_route(u)) continue;
    int v = u;
    for (int hops = 0; v != dest; ++hops) {
      if (hops > n) {
        if (why && why->empty()) {
          *why = "forwarding loop: node " + std::to_string(u) +
                 " never reaches the destination";
        }
        return false;
      }
      const int arc = r.next_arc[static_cast<std::size_t>(v)];
      if (arc < 0) {
        if (why && why->empty()) {
          *why = "forwarding from node " + std::to_string(u) +
                 " dead-ends at node " + std::to_string(v);
        }
        return false;
      }
      v = net.graph().arc(arc).dst;
    }
  }
  return true;
}

}  // namespace

std::string OracleReport::first_failure() const {
  if (!stability.pass) return "stability: " + stability.detail;
  if (!extension.pass) return "extension: " + extension.detail;
  if (!reachability.pass) return "reachability: " + reachability.detail;
  if (!global.pass) return "global: " + global.detail;
  return {};
}

SurvivingTopology surviving_topology(const SimResult& res) {
  return SurvivingTopology{res.arc_alive, res.node_up};
}

OracleReport check_oracles(const OrderTransform& alg, const LabeledGraph& net,
                           int dest, const Value& origin, const SimResult& res,
                           const OracleOptions& opts) {
  OracleReport out;
  out.converged = res.converged;
  if (!res.converged) return out;  // divergence is scored by the campaign

  const SurvivingTopology topo = surviving_topology(res);

  out.stability.checked = true;
  out.stability.pass = is_locally_optimal(alg, net, dest, origin, res.routing,
                                          topo, opts.drop_top_routes);
  if (!out.stability.pass) {
    out.stability.detail = "quiesced state is not a local optimum of the "
                           "surviving topology";
  }

  out.extension.checked = true;
  out.extension.pass = routes_are_coherent_extensions(
      alg, net, dest, origin, res.routing, topo, &out.extension.detail);
  if (out.extension.pass) {
    out.extension.pass = forwarding_reaches_dest(net, res.routing, dest,
                                                 &out.extension.detail);
  }

  out.reachability.checked = true;
  out.reachability.pass = unreachable_nodes_have_no_route(
      net, dest, res.routing, topo, &out.reachability.detail);

  if (opts.check_global && topo.node_ok(dest)) {
    out.global.checked = true;
    Routing truth;
    if (opts.baseline != nullptr && dyn::enabled()) {
      // Warm path: replay the run's fault outcome as a delta against the
      // unfaulted baseline; only the blast radius gets recomputed.
      std::unique_ptr<Solver> solver = opts.baseline->clone();
      truth = solver->update(res.delta);
    } else {
      const LabeledGraph sub = alive_subgraph(net, topo);
      // The subgraph has its own arc numbering, so it needs its own compiled
      // label set; the algebra's kernels are shared through the engine.
      if (opts.engine != nullptr && opts.engine->compiled()) {
        const compile::CompiledNet cn =
            compile::CompiledNet::make(*opts.engine, sub);
        truth = dijkstra(alg, sub, dest, origin, cn.ok() ? &cn : nullptr);
      } else {
        truth = dijkstra(alg, sub, dest, origin);
      }
    }
    for (int v = 0; v < net.num_nodes() && out.global.pass; ++v) {
      const std::size_t vi = static_cast<std::size_t>(v);
      // ⊤-dropping protocols withdraw where dijkstra reports a ⊤ weight.
      const bool sim_has = res.routing.weight[vi].has_value();
      bool truth_has = truth.weight[vi].has_value();
      if (truth_has && opts.drop_top_routes &&
          alg.ord->is_top(*truth.weight[vi])) {
        truth_has = false;
      }
      if (!topo.node_ok(v)) {
        truth_has = false;  // a crashed node carries nothing
      }
      if (sim_has != truth_has) {
        out.global.pass = false;
        out.global.detail = "node " + std::to_string(v) + (sim_has
                                ? " holds a route where the solver has none"
                                : " lacks the route the solver computes");
        break;
      }
      if (sim_has &&
          !equiv_of(alg.ord->cmp(*res.routing.weight[vi], *truth.weight[vi]))) {
        out.global.pass = false;
        out.global.detail =
            "node " + std::to_string(v) + " converged to " +
            res.routing.weight[vi]->to_string() + " but the solver's optimum is " +
            truth.weight[vi]->to_string();
        break;
      }
    }
  }
  return out;
}

OracleVerdict check_quiescent_points(const OrderTransform& alg,
                                     const LabeledGraph& net, int dest,
                                     const Value& origin, const SimResult& res,
                                     bool drop_top_routes) {
  OracleVerdict v;
  v.checked = true;  // evaluated (vacuously true when no points recorded)
  for (std::size_t i = 0; i < res.quiescent.size(); ++i) {
    const QuiescentPoint& p = res.quiescent[i];
    const SurvivingTopology topo{p.arc_alive, p.node_up};
    if (!is_locally_optimal(alg, net, dest, origin, p.routing, topo,
                            drop_top_routes)) {
      v.pass = false;
      v.detail = "quiescent point " + std::to_string(i) + " (t=" +
                 std::to_string(p.time) +
                 ") is not a local optimum of its surviving topology";
      return v;
    }
  }
  return v;
}

}  // namespace mrt::chaos
