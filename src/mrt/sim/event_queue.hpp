// Discrete-event core for the asynchronous protocol simulator.
//
// Events are totally ordered by (time, sequence number), making every run
// deterministic for a given Rng seed even when many events share a time.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "mrt/compile/flat.hpp"
#include "mrt/core/value.hpp"

namespace mrt {

struct Event {
  enum class Kind : unsigned char {
    Deliver,   ///< a route advertisement arrives along `arc`
    LinkDown,  ///< `arc` fails
    LinkUp,    ///< `arc` comes (back) up
    NodeDown,  ///< node `arc` crashes: incident arcs die, its RIB is wiped
    NodeUp,    ///< node `arc` restarts and (if destination) re-originates
    Resync,    ///< `arc`'s head re-advertises (post-loss-window recovery)
  };
  double time = 0.0;
  std::uint64_t seq = 0;  ///< tie-break: FIFO among simultaneous events
  Kind kind = Kind::Deliver;
  int arc = -1;  ///< arc id, or the node id for NodeDown/NodeUp
  /// The advertised weight (nullopt = withdrawal). Only for Deliver on the
  /// boxed path.
  std::optional<Value> weight;
  /// The advertised weight in compiled-sim mode: fixed words inline, no
  /// allocation (`present == false` = withdrawal). Only for Deliver.
  compile::FlatMsg fweight;
  /// The advertised node path (most recent hop first); carried only when the
  /// simulator runs with path-vector loop detection.
  std::vector<int> path;
};

class EventQueue {
 public:
  /// Schedules at absolute `time`; returns the assigned sequence number.
  std::uint64_t push(double time, Event::Kind kind, int arc,
                     std::optional<Value> weight = std::nullopt,
                     std::vector<int> path = {});

  /// Flat-payload variant for the compiled simulator: same ordering and
  /// sequence numbering, weight carried as inline words.
  std::uint64_t push(double time, Event::Kind kind, int arc,
                     const compile::FlatMsg& fweight,
                     std::vector<int> path = {});

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  /// Deepest the queue has ever been — the backlog high-water mark.
  std::size_t high_water() const { return high_water_; }
  /// Lifetime heap-operation counts (sift-up + sift-down entry points).
  std::uint64_t pushes() const { return next_seq_; }
  std::uint64_t pops() const { return pops_; }
  /// Deliver events currently enqueued — messages in flight. Maintained
  /// independently of the sim's own accounting so conservation invariants
  /// (sent == delivered + dropped + in-flight) can be cross-checked.
  std::size_t pending_delivers() const { return pending_delivers_; }

  /// Pops the earliest event. Precondition: not empty.
  Event pop();

  double now() const { return now_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pops_ = 0;
  double now_ = 0.0;
  std::size_t high_water_ = 0;
  std::size_t pending_delivers_ = 0;
};

}  // namespace mrt
