// SimDeltaSource: replay a simulator run as a delta stream.
//
// A PathVectorSim run with SimOptions::record_quiescent produces a log of
// QuiescentPoints, each carrying the topology delta since the previous
// point. SimDeltaSource turns that log into a stream::DeltaStream: one
// next() per quiescent point, in run order, plus — when the run ended
// mid-flight (event cap) or changed topology after the last quiescent
// instant — one trailing correction delta so the composed stream always
// lands exactly on SimResult::delta's admin state. Driving a cold-bound
// Solver/RibSolver through consume() therefore walks it through every
// intermediate surviving topology the protocol stabilized on, instead of
// jumping straight to the end state.
#pragma once

#include <vector>

#include "mrt/sim/path_vector.hpp"
#include "mrt/stream/stream.hpp"

namespace mrt {

class SimDeltaSource final : public stream::DeltaStream {
 public:
  /// Extracts the delta sequence from `res` (copies; `res` may go away).
  explicit SimDeltaSource(const SimResult& res);

  std::optional<dyn::TopologyDelta> next() override;

  /// The full extracted sequence (quiescent-point deltas + any trailing
  /// correction), for tests and wire-format round-trips.
  const std::vector<dyn::TopologyDelta>& deltas() const { return deltas_; }

 private:
  std::vector<dyn::TopologyDelta> deltas_;
  std::size_t i_ = 0;
};

}  // namespace mrt
