#include "mrt/sim/delta_stream.hpp"

namespace mrt {
namespace {

// Replays `d`'s admin-state ops onto the masks (Relabel is not produced by
// the simulator and is ignored here).
void apply_masks(const dyn::TopologyDelta& d, std::vector<bool>& arc_up,
                 std::vector<bool>& node_up) {
  for (const dyn::DeltaOp& op : d.ops) {
    switch (op.kind) {
      case dyn::DeltaOp::Kind::ArcDown:
        arc_up[static_cast<std::size_t>(op.arc)] = false;
        break;
      case dyn::DeltaOp::Kind::ArcUp:
        arc_up[static_cast<std::size_t>(op.arc)] = true;
        break;
      case dyn::DeltaOp::Kind::NodeDown:
        node_up[static_cast<std::size_t>(op.node)] = false;
        break;
      case dyn::DeltaOp::Kind::NodeUp:
        node_up[static_cast<std::size_t>(op.node)] = true;
        break;
      case dyn::DeltaOp::Kind::Relabel:
        break;
    }
  }
}

}  // namespace

SimDeltaSource::SimDeltaSource(const SimResult& res) {
  const std::size_t m = res.arc_alive.size();
  const std::size_t n = res.node_up.size();
  std::vector<bool> arc_up(m, true);
  std::vector<bool> node_up(n, true);
  deltas_.reserve(res.quiescent.size() + 1);
  for (const QuiescentPoint& p : res.quiescent) {
    deltas_.push_back(p.delta);
    apply_masks(p.delta, arc_up, node_up);
  }
  // res.delta is the end state as a diff from all-up; replay it to recover
  // the final admin masks, then emit whatever the quiescent log has not
  // covered (non-converged runs, or faults after the last quiescent point).
  std::vector<bool> final_arc_up(m, true);
  std::vector<bool> final_node_up(n, true);
  apply_masks(res.delta, final_arc_up, final_node_up);
  dyn::TopologyDelta correction;
  for (std::size_t a = 0; a < m; ++a) {
    if (arc_up[a] != final_arc_up[a]) {
      if (final_arc_up[a]) {
        correction.arc_up(static_cast<int>(a));
      } else {
        correction.arc_down(static_cast<int>(a));
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (node_up[v] != final_node_up[v]) {
      if (final_node_up[v]) {
        correction.node_up(static_cast<int>(v));
      } else {
        correction.node_down(static_cast<int>(v));
      }
    }
  }
  if (!correction.empty()) deltas_.push_back(std::move(correction));
}

std::optional<dyn::TopologyDelta> SimDeltaSource::next() {
  if (i_ >= deltas_.size()) return std::nullopt;
  return deltas_[i_++];
}

}  // namespace mrt
