// The message-schedule seam of the asynchronous simulator.
//
// PathVectorSim delegates every per-message latency decision to a Scheduler:
// `draw_delay` produces the message's base latency (consuming draws from the
// sim's schedule Rng), and `depart` turns that latency into an absolute
// delivery time, owning whatever per-arc channel state the policy needs
// (FIFO clamping, reorder windows, ...). The default policy —
// FifoJitterScheduler — is the historical jittered-FIFO behaviour extracted
// verbatim: exactly one rng_.unit() draw per message and
// `when = max(last_delivery, now) + delay`, so a seed's schedule is
// byte-identical to every pre-seam release.
//
// Adversarial policies (unbounded reordering, heavy tails, best-route
// starvation, per-arc pessimal scaling) live in mrt::adv on top of this
// interface; see adv/adv.hpp and docs/ADVERSARY.md.
#pragma once

#include <cstdint>
#include <vector>

#include "mrt/routing/labeled_graph.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

struct SimOptions {
  std::uint64_t seed = 1;
  /// Message delay is drawn uniformly from [min_delay, max_delay].
  double min_delay = 0.1;
  double max_delay = 1.0;
  /// Divergence declaration threshold.
  long max_events = 100'000;
  /// Treat ⊤-weighted candidates as unusable (Sobrinho's φ — "invalid
  /// route"): they are never selected and thus never advertised as routes.
  bool drop_top_routes = false;
  /// Carry the node path in advertisements and reject routes whose path
  /// already contains the learning node (BGP's AS-path loop detection).
  bool loop_detection = false;
  /// Record a QuiescentPoint (topology delta since the previous point plus
  /// a routing snapshot) into SimResult::quiescent every time the Deliver
  /// queue drains with changed state — the raw material of delta-stream
  /// replay (mrt/sim/delta_stream.hpp) and the oracle-during-the-run chaos
  /// mode. Recording consumes no RNG draws, so a seed's schedule is
  /// byte-identical with it on or off. Default off: snapshots cost O(|V|)
  /// per quiescent instant.
  bool record_quiescent = false;
};

/// The built-in schedule-policy classes. FifoJitter is the default
/// (jittered per-arc FIFO); the rest are adversaries defined in mrt::adv.
enum class SchedulerKind : unsigned char {
  FifoJitter,  ///< uniform jitter, per-arc FIFO (the historical default)
  Reorder,     ///< unbounded per-arc reordering (no FIFO clamp)
  HeavyTail,   ///< Pareto-tailed latencies with per-arc scale classes
  Starve,      ///< priority inversion: currently-selected arcs are slowest
  ArcScaled,   ///< fixed per-arc latency multipliers (pessimal search)
};

const char* to_string(SchedulerKind k);

/// A message-schedule policy. One Scheduler instance serves one run:
/// PathVectorSim calls bind() once at the start of run(), then draw_delay /
/// depart once per enqueued message, in send order.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual SchedulerKind kind() const = 0;

  /// Resets per-run state. `stream` is the sim's flight-recorder stream, so
  /// adversarial policies can journal reorder/starve decisions.
  virtual void bind(const LabeledGraph& net, const SimOptions& opts,
                    std::uint32_t stream) = 0;

  /// The base latency of the next message on `arc`, sent at sim time `now`.
  /// `rng` is the sim's schedule stream; policies must consume exactly the
  /// draws their schedule needs and nothing else (the default consumes one
  /// unit() per message — the byte-identity contract).
  virtual double draw_delay(int arc, double now, Rng& rng) = 0;

  /// Absolute delivery time for a message on `arc` sent at `now` with base
  /// latency `delay` (fault windows may have added to it). Owns the per-arc
  /// channel state: the default clamps to per-arc FIFO.
  virtual double depart(int arc, double now, double delay) = 0;

  /// True if this policy can deliver messages out of send order on an arc.
  /// The sim then discards stale deliveries at receipt (latest send wins),
  /// keeping the RIB-in coherent with the sender's final state.
  virtual bool reorders() const { return false; }

  /// Called when `node` switches its selection to `arc` (-1 = none): the
  /// starvation adversary uses this to track which arcs carry best routes.
  virtual void note_selection(int node, int arc) { (void)node; (void)arc; }
};

/// The historical default policy: latency uniform in [min_delay, max_delay]
/// (one rng draw per message) and per-arc FIFO — each message departs after
/// the previous one on the arc *arrived*, with fresh latency, so oscillating
/// nodes never lock into artificial lockstep.
class FifoJitterScheduler final : public Scheduler {
 public:
  SchedulerKind kind() const override { return SchedulerKind::FifoJitter; }

  void bind(const LabeledGraph& net, const SimOptions& opts,
            std::uint32_t stream) override;

  double draw_delay(int arc, double now, Rng& rng) override {
    (void)arc;
    (void)now;
    return min_ + rng.unit() * span_;
  }

  double depart(int arc, double now, double delay) override {
    double& last = last_[static_cast<std::size_t>(arc)];
    const double when = (last > now ? last : now) + delay;
    last = when;
    return when;
  }

 private:
  double min_ = 0.1;
  double span_ = 0.9;
  std::vector<double> last_;  // per arc: previous delivery time (FIFO)
};

}  // namespace mrt
