#include "mrt/sim/scheduler.hpp"

namespace mrt {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::FifoJitter: return "fifo_jitter";
    case SchedulerKind::Reorder: return "reorder";
    case SchedulerKind::HeavyTail: return "heavy_tail";
    case SchedulerKind::Starve: return "starve";
    case SchedulerKind::ArcScaled: return "arc_scaled";
  }
  return "?";
}

void FifoJitterScheduler::bind(const LabeledGraph& net, const SimOptions& opts,
                               std::uint32_t stream) {
  (void)stream;
  min_ = opts.min_delay;
  span_ = opts.max_delay - opts.min_delay;
  last_.assign(static_cast<std::size_t>(net.graph().num_arcs()), 0.0);
}

}  // namespace mrt
