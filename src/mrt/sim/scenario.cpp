#include "mrt/sim/scenario.hpp"

#include "mrt/core/bases.hpp"
#include "mrt/graph/generators.hpp"

namespace mrt {

OrderTransform gadget_algebra() {
  // Carrier {0,1,2,3}, numeric order; fn 0 = dir, fn 1 = peer.
  return OrderTransform{
      "gadget", ord_chain(3),
      fam_table("gadget_fns", 4, {{2, 3, 3, 3}, {3, 3, 1, 3}}), {}};
}

Value gadget_dir_label() { return Value::integer(0); }
Value gadget_peer_label() { return Value::integer(1); }

namespace {

// Ring of `k` gadget nodes (1..k) around destination 0: each node has a
// direct arc to 0 and a peer arc to the next node in the cycle.
Scenario gadget_ring(int k) {
  Digraph g(k + 1);
  ValueVec labels;
  for (int i = 1; i <= k; ++i) {
    g.add_arc(i, 0);
    labels.push_back(gadget_dir_label());
    g.add_arc(i, 1 + (i % k));
    labels.push_back(gadget_peer_label());
  }
  return Scenario{gadget_algebra(),
                  LabeledGraph(std::move(g), std::move(labels)), 0,
                  Value::integer(0)};
}

}  // namespace

Scenario bad_gadget() { return gadget_ring(3); }

Scenario disagree() { return gadget_ring(2); }

Scenario good_gadget_hops() {
  OrderTransform hops = ot_hop_count();
  Digraph g(4);
  ValueVec labels;
  for (int i = 1; i <= 3; ++i) {
    g.add_arc(i, 0);
    labels.push_back(Value::integer(1));
    g.add_arc(i, 1 + (i % 3));
    labels.push_back(Value::integer(1));
  }
  return Scenario{std::move(hops), LabeledGraph(std::move(g), std::move(labels)),
                  0, Value::integer(0)};
}

Scenario random_scenario(const OrderTransform& alg, Value origin, Rng& rng,
                         int nodes, int extra_arcs) {
  Digraph g = random_connected(rng, nodes, extra_arcs);
  LabeledGraph net = label_randomly(alg, std::move(g), rng);
  return Scenario{alg, std::move(net), 0, std::move(origin)};
}

OrderTransform gao_rexford_algebra() {
  // fn 0 = cust, fn 1 = peer, fn 2 = prov over carrier {C, R, P, ⊤}.
  return OrderTransform{"gao_rexford", ord_chain(3),
                        fam_table("gr_fns", 4,
                                  {{0, 3, 3, 3},    // cust: C↦C else ⊤
                                   {1, 3, 3, 3},    // peer: C↦R else ⊤
                                   {2, 2, 2, 3}}),  // prov: any valid ↦ P
                        {}};
}

Value gr_cust_label() { return Value::integer(0); }
Value gr_peer_label() { return Value::integer(1); }
Value gr_prov_label() { return Value::integer(2); }

Scenario gao_rexford_hierarchy(Rng& rng, int nodes, int extra_links) {
  // Node i's tier is its id: lower id = closer to the top of the hierarchy.
  // Each node other than 0 picks a provider with a smaller id, giving an
  // acyclic customer→provider relation rooted at node 0 (the destination's
  // AS). For each relationship j-provider-of-k we add both learning arcs:
  //   (k, j) labeled prov  (k learns from its provider j)
  //   (j, k) labeled cust  (j learns from its customer k)
  Digraph g(nodes);
  ValueVec labels;
  auto relate = [&](int provider, int customer) {
    g.add_arc(customer, provider);
    labels.push_back(gr_prov_label());
    g.add_arc(provider, customer);
    labels.push_back(gr_cust_label());
  };
  for (int k = 1; k < nodes; ++k) {
    relate(static_cast<int>(rng.below(static_cast<std::uint64_t>(k))), k);
  }
  for (int e = 0; e < extra_links; ++e) {
    const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    const int b = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));
    if (a == b || g.has_arc(a, b)) continue;
    if (rng.chance(0.5)) {
      // Peer link: both sides learn peer routes.
      g.add_arc(a, b);
      labels.push_back(gr_peer_label());
      g.add_arc(b, a);
      labels.push_back(gr_peer_label());
    } else {
      relate(std::min(a, b), std::max(a, b));  // extra provider edge, acyclic
    }
  }
  // The destination AS originates a customer-class route.
  return Scenario{gao_rexford_algebra(),
                  LabeledGraph(std::move(g), std::move(labels)), 0,
                  Value::integer(0)};
}

}  // namespace mrt
