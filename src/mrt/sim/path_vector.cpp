#include "mrt/sim/path_vector.hpp"

#include <algorithm>
#include <utility>

#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/require.hpp"

namespace mrt {

PathVectorSim::PathVectorSim(const OrderTransform& alg, LabeledGraph net,
                             int dest, Value origin, SimOptions opts,
                             const compile::WeightEngine* engine)
    : alg_(alg),
      net_(std::move(net)),
      dest_(dest),
      origin_(std::move(origin)),
      opts_(opts),
      rng_(opts.seed),
      fault_rng_(par::mix_seed(opts.seed, 0x0FA171ULL)) {
  const int n = net_.num_nodes();
  const int m = net_.graph().num_arcs();
  MRT_REQUIRE(dest_ >= 0 && dest_ < n);
  rib_in_.assign(static_cast<std::size_t>(m), std::nullopt);
  rib_in_path_.assign(static_cast<std::size_t>(m), {});
  arc_up_.assign(static_cast<std::size_t>(m), true);
  node_up_.assign(static_cast<std::size_t>(n), true);
  arc_faults_.assign(static_cast<std::size_t>(m), {});
  selected_.assign(static_cast<std::size_t>(n), std::nullopt);
  selected_arc_.assign(static_cast<std::size_t>(n), -1);
  selected_path_.assign(static_cast<std::size_t>(n), {});
  flaps_.assign(static_cast<std::size_t>(n), 0);
  jstream_ = obs::journal_next_stream();
  selected_[static_cast<std::size_t>(dest_)] = origin_;
  selected_path_[static_cast<std::size_t>(dest_)] = {dest_};

  // Compiled mode: requires the algebra compiled, every arc label compiled,
  // the origin representable, and the layout narrow enough for the inline
  // message payload. Any miss leaves the run boxed — same results, slower.
  if (engine != nullptr && engine->compiled()) {
    cnet_ = compile::CompiledNet::make(*engine, net_);
    if (cnet_.ok() && cnet_.words() <= compile::kMsgWords) {
      origin_flat_.n = static_cast<std::uint8_t>(cnet_.words());
      if (cnet_.algebra().encode(origin_, origin_flat_.w.data())) {
        origin_flat_.present = true;
        flat_ = true;
        rib_in_flat_.assign(static_cast<std::size_t>(m), {});
        selected_flat_.assign(static_cast<std::size_t>(n), {});
        selected_flat_[static_cast<std::size_t>(dest_)] = origin_flat_;
      }
    }
  }
}

void PathVectorSim::schedule_link_down(double t, int arc) {
  queue_.push(t, Event::Kind::LinkDown, arc);
}

void PathVectorSim::schedule_link_up(double t, int arc) {
  queue_.push(t, Event::Kind::LinkUp, arc);
}

void PathVectorSim::schedule_node_down(double t, int node) {
  MRT_REQUIRE(node >= 0 && node < net_.num_nodes());
  queue_.push(t, Event::Kind::NodeDown, node);
}

void PathVectorSim::schedule_node_up(double t, int node) {
  MRT_REQUIRE(node >= 0 && node < net_.num_nodes());
  queue_.push(t, Event::Kind::NodeUp, node);
}

void PathVectorSim::schedule_resync(double t, int arc) {
  queue_.push(t, Event::Kind::Resync, arc);
}

void PathVectorSim::add_arc_fault(const ArcFault& f) {
  MRT_REQUIRE(f.arc >= 0 && f.arc < net_.graph().num_arcs());
  arc_faults_[static_cast<std::size_t>(f.arc)].push_back(f);
}

void PathVectorSim::set_scheduler(Scheduler* s) {
  sched_ = s != nullptr ? s : &fifo_;
}

bool PathVectorSim::arc_alive(int arc) const {
  if (!arc_up_[static_cast<std::size_t>(arc)]) return false;
  const Arc& a = net_.graph().arc(arc);
  return node_up_[static_cast<std::size_t>(a.src)] &&
         node_up_[static_cast<std::size_t>(a.dst)];
}

const ArcFault* PathVectorSim::active_fault(int arc, double now) const {
  for (const ArcFault& f : arc_faults_[static_cast<std::size_t>(arc)]) {
    if (f.from <= now && now < f.until) return &f;
  }
  return nullptr;
}

std::optional<Value> PathVectorSim::candidate_via(int arc) const {
  if (!arc_alive(arc)) return std::nullopt;
  const auto& adv = rib_in_[static_cast<std::size_t>(arc)];
  if (!adv) return std::nullopt;
  if (opts_.loop_detection) {
    // BGP-style: refuse a route whose path already contains this node.
    const int self = net_.graph().arc(arc).src;
    const auto& path = rib_in_path_[static_cast<std::size_t>(arc)];
    if (std::find(path.begin(), path.end(), self) != path.end()) {
      return std::nullopt;
    }
  }
  Value cand = alg_.fns->apply(net_.label(arc), *adv);
  if (opts_.drop_top_routes && alg_.ord->is_top(cand)) return std::nullopt;
  return cand;
}

void PathVectorSim::candidate_via_flat(int arc, compile::FlatMsg* out) const {
  out->present = false;
  if (!arc_alive(arc)) return;
  const compile::FlatMsg& adv = rib_in_flat_[static_cast<std::size_t>(arc)];
  if (!adv.present) return;
  if (opts_.loop_detection) {
    const int self = net_.graph().arc(arc).src;
    const auto& path = rib_in_path_[static_cast<std::size_t>(arc)];
    if (std::find(path.begin(), path.end(), self) != path.end()) return;
  }
  *out = adv;
  cnet_.algebra().apply(cnet_.label(arc), out->w.data());
  if (opts_.drop_top_routes && cnet_.algebra().is_top(out->w.data())) {
    out->present = false;
    return;
  }
  out->present = true;
}

// Sends `node`'s current selection to every in-neighbour, respecting per-arc
// FIFO (a later message never overtakes an earlier one).
void PathVectorSim::advertise(int node, double now) {
  obs::ScopedSpan span("advertise", "sim", node);
  obs::TraceSession* trace = obs::TraceSession::current();
  const bool withdrawal =
      flat_ ? !selected_flat_[static_cast<std::size_t>(node)].present
            : !selected_[static_cast<std::size_t>(node)];
  // Per-message hot loop: walk the CSR in-view (one flat index chase per
  // neighbour) instead of the vector<vector<int>> adjacency.
  const CsrAdjacency& in = net_.graph().csr_in();
  for (int e = in.begin(node); e < in.end(node); ++e) {
    const int id = in.arc[static_cast<std::size_t>(e)];
    if (!arc_alive(id)) continue;
    // Base latency comes from the scheduler's draw on rng_ unconditionally,
    // so the schedule of a seed is identical whether or not faults are
    // installed; fault windows only ever add on top, drawing from fault_rng_.
    double delay = sched_->draw_delay(id, now, rng_);
    int copies = 1;
    if (const ArcFault* f = active_fault(id, now)) {
      if (f->extra_delay > 0.0 || f->jitter > 0.0) {
        delay += f->extra_delay;
        if (f->jitter > 0.0) delay += fault_rng_.unit() * f->jitter;
        ++stats_.jittered_messages;
      }
      if (f->dup_p > 0.0 && fault_rng_.chance(f->dup_p)) {
        copies = 2;
        ++stats_.duplicated_messages;
      }
    }
    for (int c = 0; c < copies; ++c) {
      if (c > 0) {
        // The duplicate rides behind the original with its own latency.
        delay = opts_.min_delay +
                fault_rng_.unit() * (opts_.max_delay - opts_.min_delay);
      }
      // The policy owns the channel discipline: the default clamps to
      // per-arc FIFO (each message departs after the previous one *arrived*,
      // with fresh latency — collapsing onto the previous arrival time would
      // lock oscillating nodes into artificial lockstep); adversaries may
      // reorder.
      const double when = sched_->depart(id, now, delay);
      if (flat_) {
        queue_.push(when, Event::Kind::Deliver, id,
                    selected_flat_[static_cast<std::size_t>(node)],
                    selected_path_[static_cast<std::size_t>(node)]);
      } else {
        queue_.push(when, Event::Kind::Deliver, id,
                    selected_[static_cast<std::size_t>(node)],
                    selected_path_[static_cast<std::size_t>(node)]);
      }
      ++stats_.messages_sent;
      if (withdrawal) ++stats_.withdrawals_sent;
      obs::jrecord(obs::Subsystem::Sim, obs::EventKind::MsgSend, jstream_,
                   node, id, withdrawal ? 0 : 1, 0,
                   static_cast<std::uint64_t>(now * 1e6));
      if (trace) {
        // Message flight on the sim-time process: one row per arc.
        trace->complete(withdrawal ? "withdraw" : "advert", "sim.msg",
                        now * 1e6, (when - now) * 1e6,
                        obs::TraceSession::kSimPid, id,
                        {{"from", static_cast<std::int64_t>(node)}});
      }
    }
  }
}

void PathVectorSim::reselect(int node, double now) {
  if (node == dest_) return;  // the destination's route is pinned
  if (!node_up_[static_cast<std::size_t>(node)]) return;  // crashed
  obs::ScopedSpan span("reselect", "sim", node);
  ++stats_.reselects;
  if (flat_) {
    reselect_flat(node, now);
  } else {
    reselect_boxed(node, now);
  }
}

void PathVectorSim::reselect_boxed(int node, double now) {
  // Best candidate, deterministic: scan out-arcs in id order, strict
  // improvement replaces.
  std::optional<Value> best;
  int best_arc = -1;
  const CsrAdjacency& out = net_.graph().csr_out();
  for (int e = out.begin(node); e < out.end(node); ++e) {
    const int id = out.arc[static_cast<std::size_t>(e)];
    auto cand = candidate_via(id);
    if (!cand) continue;
    if (!best || lt_of(alg_.ord->cmp(*cand, *best))) {
      best = std::move(cand);
      best_arc = id;
    }
  }

  // Stickiness: keep the current arc while it remains non-strictly-worse.
  const int cur_arc = selected_arc_[static_cast<std::size_t>(node)];
  if (cur_arc >= 0 && best) {
    if (auto via_cur = candidate_via(cur_arc)) {
      if (!lt_of(alg_.ord->cmp(*best, *via_cur))) {
        best = via_cur;
        best_arc = cur_arc;
      }
    }
  }

  auto& sel = selected_[static_cast<std::size_t>(node)];
  auto& sel_arc = selected_arc_[static_cast<std::size_t>(node)];
  std::vector<int> best_path;
  if (opts_.loop_detection && best_arc >= 0) {
    best_path.push_back(node);
    const auto& via = rib_in_path_[static_cast<std::size_t>(best_arc)];
    best_path.insert(best_path.end(), via.begin(), via.end());
  }
  const bool weight_changed =
      best.has_value() != sel.has_value() || (best && !(*best == *sel));
  const bool path_changed =
      opts_.loop_detection &&
      best_path != selected_path_[static_cast<std::size_t>(node)];
  if (weight_changed || path_changed || best_arc != sel_arc) {
    ++flaps_[static_cast<std::size_t>(node)];
    ++stats_.selection_changes;
    sel = best;
    sel_arc = best_arc;
    selected_path_[static_cast<std::size_t>(node)] = std::move(best_path);
    sched_->note_selection(node, best_arc);
    obs::jrecord(obs::Subsystem::Sim, obs::EventKind::Reselect, jstream_,
                 node, best_arc, flaps_[static_cast<std::size_t>(node)], 0,
                 static_cast<std::uint64_t>(now * 1e6));
    if (obs::TraceSession* trace = obs::TraceSession::current()) {
      trace->instant("select", "sim.select", now * 1e6,
                     obs::TraceSession::kSimPid, node,
                     {{"weight", sel ? sel->to_string() : "-"}});
    }
    if (weight_changed || path_changed) advertise(node, now);
  }
}

// The boxed reselection step on flat words: same scan order, same
// strict-improvement and stickiness rules, word equality standing in for
// Value equality. Both modes flap and advertise at identical points.
void PathVectorSim::reselect_flat(int node, double now) {
  const compile::CompiledAlgebra& ca = cnet_.algebra();
  compile::FlatMsg best;
  best.n = static_cast<std::uint8_t>(cnet_.words());
  int best_arc = -1;
  compile::FlatMsg cand;
  cand.n = best.n;
  const CsrAdjacency& out = net_.graph().csr_out();
  for (int e = out.begin(node); e < out.end(node); ++e) {
    const int id = out.arc[static_cast<std::size_t>(e)];
    candidate_via_flat(id, &cand);
    if (!cand.present) continue;
    if (!best.present ||
        lt_of(ca.compare(cand.w.data(), best.w.data()))) {
      best = cand;
      best_arc = id;
    }
  }

  const int cur_arc = selected_arc_[static_cast<std::size_t>(node)];
  if (cur_arc >= 0 && best.present) {
    compile::FlatMsg via_cur;
    via_cur.n = best.n;
    candidate_via_flat(cur_arc, &via_cur);
    if (via_cur.present &&
        !lt_of(ca.compare(best.w.data(), via_cur.w.data()))) {
      best = via_cur;
      best_arc = cur_arc;
    }
  }

  compile::FlatMsg& sel = selected_flat_[static_cast<std::size_t>(node)];
  auto& sel_arc = selected_arc_[static_cast<std::size_t>(node)];
  std::vector<int> best_path;
  if (opts_.loop_detection && best_arc >= 0) {
    best_path.push_back(node);
    const auto& via = rib_in_path_[static_cast<std::size_t>(best_arc)];
    best_path.insert(best_path.end(), via.begin(), via.end());
  }
  const bool weight_changed = !(best == sel);
  const bool path_changed =
      opts_.loop_detection &&
      best_path != selected_path_[static_cast<std::size_t>(node)];
  if (weight_changed || path_changed || best_arc != sel_arc) {
    ++flaps_[static_cast<std::size_t>(node)];
    ++stats_.selection_changes;
    sel = best;
    sel_arc = best_arc;
    selected_path_[static_cast<std::size_t>(node)] = std::move(best_path);
    sched_->note_selection(node, best_arc);
    obs::jrecord(obs::Subsystem::Sim, obs::EventKind::Reselect, jstream_,
                 node, best_arc, flaps_[static_cast<std::size_t>(node)], 0,
                 static_cast<std::uint64_t>(now * 1e6));
    if (obs::TraceSession* trace = obs::TraceSession::current()) {
      trace->instant("select", "sim.select", now * 1e6,
                     obs::TraceSession::kSimPid, node,
                     {{"weight",
                       sel.present ? ca.decode(sel.w.data()).to_string()
                                   : "-"}});
    }
    if (weight_changed || path_changed) advertise(node, now);
  }
}

void PathVectorSim::crash_node(int node, double now) {
  if (!node_up_[static_cast<std::size_t>(node)]) return;  // already down
  node_up_[static_cast<std::size_t>(node)] = false;
  ++stats_.node_crash_events;
  obs::jrecord(obs::Subsystem::Sim, obs::EventKind::NodeCrash, jstream_, node,
               -1, 0, 0, static_cast<std::uint64_t>(now * 1e6));
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    trace->instant("crash", "sim.chaos", now * 1e6,
                   obs::TraceSession::kSimPid, node);
  }
  // The node loses all protocol state: its RIB-in (out-arcs carry what its
  // neighbours advertised to it) and its selection.
  for (int id : net_.graph().out_arcs(node)) {
    rib_in_[static_cast<std::size_t>(id)] = std::nullopt;
    rib_in_path_[static_cast<std::size_t>(id)].clear();
    if (flat_) rib_in_flat_[static_cast<std::size_t>(id)].present = false;
  }
  selected_[static_cast<std::size_t>(node)] = std::nullopt;
  selected_arc_[static_cast<std::size_t>(node)] = -1;
  selected_path_[static_cast<std::size_t>(node)].clear();
  if (flat_) selected_flat_[static_cast<std::size_t>(node)].present = false;
  sched_->note_selection(node, -1);
  // Every neighbour's session to the crashed node dies with it: the arcs
  // (x → node) carried node's advertisements to x, so x forgets them and
  // reselects — exactly the LinkDown treatment, for all sessions at once.
  for (int id : net_.graph().in_arcs(node)) {
    rib_in_[static_cast<std::size_t>(id)] = std::nullopt;
    rib_in_path_[static_cast<std::size_t>(id)].clear();
    if (flat_) rib_in_flat_[static_cast<std::size_t>(id)].present = false;
  }
  for (int id : net_.graph().in_arcs(node)) {
    reselect(net_.graph().arc(id).src, now);
  }
}

void PathVectorSim::restart_node(int node, double now) {
  if (node_up_[static_cast<std::size_t>(node)]) return;  // not down
  node_up_[static_cast<std::size_t>(node)] = true;
  ++stats_.node_restart_events;
  obs::jrecord(obs::Subsystem::Sim, obs::EventKind::NodeRestart, jstream_,
               node, -1, 0, 0, static_cast<std::uint64_t>(now * 1e6));
  if (obs::TraceSession* trace = obs::TraceSession::current()) {
    trace->instant("restart", "sim.chaos", now * 1e6,
                   obs::TraceSession::kSimPid, node);
  }
  if (node == dest_) {
    // The destination re-originates its route on restart.
    selected_[static_cast<std::size_t>(node)] = origin_;
    selected_path_[static_cast<std::size_t>(node)] = {node};
    if (flat_) selected_flat_[static_cast<std::size_t>(node)] = origin_flat_;
    advertise(node, now);
    return;
  }
  // Each revived learning session (node → y) needs y to re-advertise so the
  // restarted node can rebuild its RIB — the LinkUp treatment per session.
  for (int id : net_.graph().out_arcs(node)) {
    if (!arc_alive(id)) continue;
    const int head = net_.graph().arc(id).dst;
    const bool head_has =
        flat_ ? selected_flat_[static_cast<std::size_t>(head)].present
              : selected_[static_cast<std::size_t>(head)].has_value();
    if (head_has) {
      advertise(head, now);
    }
  }
}

Routing PathVectorSim::snapshot_routing() const {
  Routing r;
  if (flat_) {
    const compile::CompiledAlgebra& ca = cnet_.algebra();
    r.weight.resize(selected_flat_.size());
    for (std::size_t v = 0; v < selected_flat_.size(); ++v) {
      r.weight[v] = selected_flat_[v].present
                        ? std::optional<Value>(
                              ca.decode(selected_flat_[v].w.data()))
                        : std::nullopt;
    }
  } else {
    r.weight = selected_;
  }
  r.next_arc = selected_arc_;
  return r;
}

void PathVectorSim::maybe_record_quiescent(double now) {
  const std::size_t m = arc_up_.size();
  const std::size_t n = node_up_.size();
  if (!q_have_) {
    // The first point diffs against the all-up network — the state a
    // replaying solver binds cold before consuming the stream.
    q_arc_up_.assign(m, true);
    q_node_up_.assign(n, true);
  }
  dyn::TopologyDelta d;
  for (std::size_t a = 0; a < m; ++a) {
    if (arc_up_[a] != q_arc_up_[a]) {
      if (arc_up_[a]) {
        d.arc_up(static_cast<int>(a));
      } else {
        d.arc_down(static_cast<int>(a));
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (node_up_[v] != q_node_up_[v]) {
      if (node_up_[v]) {
        d.node_up(static_cast<int>(v));
      } else {
        d.node_down(static_cast<int>(v));
      }
    }
  }
  Routing r = snapshot_routing();
  const bool topo_changed = !d.ops.empty();
  const bool routing_changed = !q_have_ || r.weight != q_routing_.weight ||
                               r.next_arc != q_routing_.next_arc;
  // The queue can drain many times in a row with nothing new (e.g. a fault
  // event that triggered no reaction): only state changes produce points.
  if (!topo_changed && !routing_changed) return;
  QuiescentPoint p;
  p.time = now;
  p.delta = std::move(d);
  p.arc_alive.resize(m);
  for (std::size_t a = 0; a < m; ++a) {
    p.arc_alive[a] = arc_alive(static_cast<int>(a));
  }
  p.node_up = node_up_;
  q_arc_up_ = arc_up_;
  q_node_up_ = node_up_;
  q_routing_ = std::move(r);
  q_have_ = true;
  p.routing = q_routing_;
  quiescent_.push_back(std::move(p));
}

SimResult PathVectorSim::run() {
  static obs::Histogram& run_ns = obs::registry().histogram("sim.run_ns");
  obs::ScopedTimer timer(run_ns);
  obs::TraceSession* trace = obs::TraceSession::current();
  sched_->bind(net_, opts_, jstream_);
  sched_reorders_ = sched_->reorders();
  if (sched_reorders_) {
    arc_seq_floor_.assign(static_cast<std::size_t>(net_.graph().num_arcs()),
                          0);
  }
  advertise(dest_, 0.0);

  // Round 1 is everything the origination put in flight; round r+1 is
  // whatever is in flight when the last round-r Deliver leaves the queue.
  rounds_ = 0;
  round_mark_ = queue_.pushes();
  round_pending_ = queue_.pending_delivers();

  while (!queue_.empty() && delivered_ < opts_.max_events) {
    Event e = queue_.pop();
    if (e.kind == Event::Kind::Deliver && e.seq < round_mark_ &&
        round_pending_ > 0) {
      --round_pending_;
    }
    switch (e.kind) {
      case Event::Kind::Deliver: {
        if (!arc_alive(e.arc)) {  // lost
          ++stats_.dropped_dead_arc;
          obs::jrecord(obs::Subsystem::Sim, obs::EventKind::MsgLoss, jstream_,
                       net_.graph().arc(e.arc).src, e.arc, 0, 0,
                       static_cast<std::uint64_t>(queue_.now() * 1e6));
          break;
        }
        if (const ArcFault* f = active_fault(e.arc, queue_.now());
            f && f->loss_p > 0.0 && fault_rng_.chance(f->loss_p)) {
          ++stats_.dropped_injected_loss;
          obs::jrecord(obs::Subsystem::Sim, obs::EventKind::MsgLoss, jstream_,
                       net_.graph().arc(e.arc).src, e.arc, 1, 0,
                       static_cast<std::uint64_t>(queue_.now() * 1e6));
          if (trace) {
            trace->instant("loss", "sim.chaos", queue_.now() * 1e6,
                           obs::TraceSession::kSimPid, e.arc);
          }
          break;
        }
        if (sched_reorders_) {
          // Reordering schedule: an older send arriving after a newer one
          // must not roll the RIB-in back — the channel models "latest send
          // wins". Count the stale copy as delivered so conservation holds.
          auto& floor = arc_seq_floor_[static_cast<std::size_t>(e.arc)];
          if (e.seq < floor) {
            ++delivered_;
            ++stats_.deliveries;
            ++stats_.stale_discarded;
            obs::jrecord(obs::Subsystem::Sim, obs::EventKind::StaleDrop,
                         jstream_, net_.graph().arc(e.arc).src, e.arc, 0, 0,
                         static_cast<std::uint64_t>(queue_.now() * 1e6));
            break;
          }
          floor = e.seq + 1;
        }
        ++delivered_;
        ++stats_.deliveries;
        if (flat_) {
          if (!e.fweight.present) ++stats_.withdrawals_delivered;
          rib_in_flat_[static_cast<std::size_t>(e.arc)] = e.fweight;
        } else {
          if (!e.weight) ++stats_.withdrawals_delivered;
          rib_in_[static_cast<std::size_t>(e.arc)] = e.weight;
        }
        rib_in_path_[static_cast<std::size_t>(e.arc)] = std::move(e.path);
        obs::jrecord(obs::Subsystem::Sim, obs::EventKind::MsgDeliver,
                     jstream_, net_.graph().arc(e.arc).src, e.arc,
                     (flat_ ? e.fweight.present : e.weight.has_value()) ? 1
                                                                        : 0,
                     0, static_cast<std::uint64_t>(queue_.now() * 1e6));
        if (trace && delivered_ % 64 == 0) {
          trace->counter("queue depth", queue_.now() * 1e6,
                         obs::TraceSession::kSimPid,
                         static_cast<double>(queue_.size()));
        }
        reselect(net_.graph().arc(e.arc).src, queue_.now());
        break;
      }
      case Event::Kind::LinkDown: {
        ++stats_.link_down_events;
        obs::jrecord(obs::Subsystem::Sim, obs::EventKind::LinkDown, jstream_,
                     net_.graph().arc(e.arc).src, e.arc, 0, 0,
                     static_cast<std::uint64_t>(queue_.now() * 1e6));
        arc_up_[static_cast<std::size_t>(e.arc)] = false;
        rib_in_[static_cast<std::size_t>(e.arc)] = std::nullopt;
        if (flat_) rib_in_flat_[static_cast<std::size_t>(e.arc)].present = false;
        if (trace) {
          trace->instant("link down", "sim.link", queue_.now() * 1e6,
                         obs::TraceSession::kSimPid, e.arc);
        }
        reselect(net_.graph().arc(e.arc).src, queue_.now());
        break;
      }
      case Event::Kind::LinkUp: {
        ++stats_.link_up_events;
        obs::jrecord(obs::Subsystem::Sim, obs::EventKind::LinkUp, jstream_,
                     net_.graph().arc(e.arc).src, e.arc, 0, 0,
                     static_cast<std::uint64_t>(queue_.now() * 1e6));
        arc_up_[static_cast<std::size_t>(e.arc)] = true;
        if (trace) {
          trace->instant("link up", "sim.link", queue_.now() * 1e6,
                         obs::TraceSession::kSimPid, e.arc);
        }
        // The arc's head re-advertises so the tail can learn the route —
        // unless an endpoint is still crashed, in which case the restart
        // will trigger the re-advertisement.
        if (!arc_alive(e.arc)) break;
        const int head = net_.graph().arc(e.arc).dst;
        const bool head_has =
            flat_ ? selected_flat_[static_cast<std::size_t>(head)].present
                  : selected_[static_cast<std::size_t>(head)].has_value();
        if (head_has) {
          advertise(head, queue_.now());
        }
        break;
      }
      case Event::Kind::NodeDown: {
        crash_node(e.arc, queue_.now());
        break;
      }
      case Event::Kind::NodeUp: {
        restart_node(e.arc, queue_.now());
        break;
      }
      case Event::Kind::Resync: {
        ++stats_.resync_events;
        obs::jrecord(obs::Subsystem::Sim, obs::EventKind::Resync, jstream_,
                     -1, e.arc, 0, 0,
                     static_cast<std::uint64_t>(queue_.now() * 1e6));
        if (trace) {
          trace->instant("resync", "sim.chaos", queue_.now() * 1e6,
                         obs::TraceSession::kSimPid, e.arc);
        }
        if (!arc_alive(e.arc)) break;
        // Unconditional re-advertisement (withdrawals included): the loss
        // window may have eaten the head's final message, route or
        // withdrawal alike, and this is what repairs the stale RIB.
        advertise(net_.graph().arc(e.arc).dst, queue_.now());
        break;
      }
    }
    if (e.kind == Event::Kind::Deliver && round_pending_ == 0) {
      // The round's last message (and any it triggered) has been handled:
      // everything now in flight forms the next generation.
      ++rounds_;
      round_mark_ = queue_.pushes();
      round_pending_ = queue_.pending_delivers();
    }
    // Quiescent instant: no advertisements in flight (future fault events
    // may still be queued — each fault wave then yields its own points).
    // Pure observation: consumes no RNG draws, enqueues nothing.
    if (opts_.record_quiescent && queue_.pending_delivers() == 0) {
      maybe_record_quiescent(queue_.now());
    }
  }

  stats_.queue_high_water = queue_.high_water();
  stats_.in_flight_at_end = static_cast<long>(queue_.pending_delivers());

  // Decode boundary: in compiled mode, Values materialize only here.
  if (flat_) {
    const compile::CompiledAlgebra& ca = cnet_.algebra();
    for (std::size_t v = 0; v < selected_flat_.size(); ++v) {
      selected_[v] = selected_flat_[v].present
                         ? std::optional<Value>(ca.decode(
                               selected_flat_[v].w.data()))
                         : std::nullopt;
    }
  }

  SimResult out;
  out.converged = queue_.empty();
  out.events = delivered_;
  out.rounds = rounds_;
  out.finish_time = queue_.now();
  out.routing.weight = selected_;
  out.routing.next_arc = selected_arc_;
  out.flaps = flaps_;
  out.paths = selected_path_;
  const int m = net_.graph().num_arcs();
  out.arc_alive.resize(static_cast<std::size_t>(m));
  for (int a = 0; a < m; ++a) {
    out.arc_alive[static_cast<std::size_t>(a)] = arc_alive(a);
  }
  out.node_up = node_up_;
  out.delta = dyn::TopologyDelta::to_state(arc_up_, node_up_);
  out.quiescent = std::move(quiescent_);
  out.stats = stats_;

  if (obs::enabled()) {
    obs::Registry& reg = obs::registry();
    reg.counter("sim.runs").add(1);
    reg.counter("sim.compiled_runs").add(flat_ ? 1 : 0);
    reg.counter("sim.converged").add(out.converged ? 1 : 0);
    reg.counter("sim.messages_sent")
        .add(static_cast<std::uint64_t>(stats_.messages_sent));
    reg.counter("sim.withdrawals_sent")
        .add(static_cast<std::uint64_t>(stats_.withdrawals_sent));
    reg.counter("sim.deliveries")
        .add(static_cast<std::uint64_t>(stats_.deliveries));
    reg.counter("sim.withdrawals_delivered")
        .add(static_cast<std::uint64_t>(stats_.withdrawals_delivered));
    reg.counter("sim.dropped_dead_arc")
        .add(static_cast<std::uint64_t>(stats_.dropped_dead_arc));
    reg.counter("sim.reselects")
        .add(static_cast<std::uint64_t>(stats_.reselects));
    reg.counter("sim.selection_changes")
        .add(static_cast<std::uint64_t>(stats_.selection_changes));
    reg.counter("sim.link_down_events")
        .add(static_cast<std::uint64_t>(stats_.link_down_events));
    reg.counter("sim.link_up_events")
        .add(static_cast<std::uint64_t>(stats_.link_up_events));
    reg.counter("sim.dropped_injected_loss")
        .add(static_cast<std::uint64_t>(stats_.dropped_injected_loss));
    reg.counter("sim.duplicated_messages")
        .add(static_cast<std::uint64_t>(stats_.duplicated_messages));
    reg.counter("sim.jittered_messages")
        .add(static_cast<std::uint64_t>(stats_.jittered_messages));
    reg.counter("sim.node_crash_events")
        .add(static_cast<std::uint64_t>(stats_.node_crash_events));
    reg.counter("sim.node_restart_events")
        .add(static_cast<std::uint64_t>(stats_.node_restart_events));
    reg.counter("sim.resync_events")
        .add(static_cast<std::uint64_t>(stats_.resync_events));
    reg.counter("sim.stale_discarded")
        .add(static_cast<std::uint64_t>(stats_.stale_discarded));
    reg.counter("sim.heap_pushes").add(queue_.pushes());
    reg.counter("sim.heap_pops").add(queue_.pops());
    reg.gauge("sim.queue_high_water")
        .max_of(static_cast<double>(stats_.queue_high_water));
    reg.histogram("sim.events_per_run")
        .record(static_cast<std::uint64_t>(delivered_));
    reg.histogram("sim.rounds_per_run")
        .record(static_cast<std::uint64_t>(rounds_));
    obs::Histogram& flap_hist = reg.histogram("sim.flaps_per_node");
    for (int f : flaps_) flap_hist.record(static_cast<std::uint64_t>(f));
  }
  return out;
}

}  // namespace mrt
