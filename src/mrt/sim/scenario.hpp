// Canned protocol scenarios: the classic BGP stability gadgets expressed as
// finite order transforms, plus helpers the convergence experiments share.
//
// The gadget algebra has carrier {0,1,2,3} ordered numerically (smaller
// preferred): 0 = originated, 1 = via-peer (most preferred real route),
// 2 = direct, 3 = ⊤ (forbidden/invalid). Arc functions:
//   dir:  0 ↦ 2, else ↦ 3      (a direct link to the destination)
//   peer: 2 ↦ 1, else ↦ 3      (a customer-like detour through a peer,
//                               usable only on the peer's *direct* route)
// This algebra is not nondecreasing (peer maps 2 to 1), which is exactly
// what permits instability.
#pragma once

#include "mrt/sim/path_vector.hpp"

namespace mrt {

/// The gadget order transform described above.
OrderTransform gadget_algebra();

/// Label value for the gadget's direct / peer arc functions.
Value gadget_dir_label();
Value gadget_peer_label();

/// A scenario: network + destination + originated value.
struct Scenario {
  OrderTransform alg;
  LabeledGraph net;
  int dest = 0;
  Value origin;
};

/// BAD GADGET: 3 nodes in a preference cycle around the destination — no
/// stable routing exists; every fair schedule oscillates forever.
Scenario bad_gadget();

/// DISAGREE: 2 nodes that each prefer the route through the other — two
/// distinct stable routings exist; the schedule picks which one is reached.
Scenario disagree();

/// The same 3-node topology as BAD GADGET but with the (increasing)
/// hop-count algebra: converges under every schedule.
Scenario good_gadget_hops();

/// A random connected network labeled from `alg`'s function family.
Scenario random_scenario(const OrderTransform& alg, Value origin, Rng& rng,
                         int nodes, int extra_arcs);

/// The Gao–Rexford customer/peer/provider algebra as an order transform:
/// carrier {0 = via-customer, 1 = via-peer, 2 = via-provider, 3 = ⊤/invalid}
/// preferred in that order. Arc functions encode the export rules — only
/// customer-learned routes cross peer and customer→provider arcs:
///   cust: C ↦ C,      R,P ↦ ⊤      (learning from a customer)
///   peer: C ↦ R,      R,P ↦ ⊤      (learning from a peer)
///   prov: C,R,P ↦ P                (learning from a provider: exports all)
/// Nondecreasing but NOT increasing — convergence rests on the economic
/// hierarchy (acyclic customer→provider relation), not on Theorem 5.
OrderTransform gao_rexford_algebra();
Value gr_cust_label();
Value gr_peer_label();
Value gr_prov_label();

/// A random valley-free internet: a random customer→provider DAG by node
/// rank, plus a few peer links between equal-rank nodes. Every arc carries
/// the correct relationship label for the *learning* direction.
Scenario gao_rexford_hierarchy(Rng& rng, int nodes, int extra_links);

}  // namespace mrt
