#include "mrt/sim/event_queue.hpp"

#include "mrt/support/require.hpp"

namespace mrt {

std::uint64_t EventQueue::push(double time, Event::Kind kind, int arc,
                               std::optional<Value> weight,
                               std::vector<int> path) {
  MRT_REQUIRE(time >= now_);
  Event e;
  e.time = time;
  e.seq = next_seq_++;
  e.kind = kind;
  e.arc = arc;
  e.weight = std::move(weight);
  e.path = std::move(path);
  if (kind == Event::Kind::Deliver) ++pending_delivers_;
  heap_.push(std::move(e));
  if (heap_.size() > high_water_) high_water_ = heap_.size();
  return next_seq_ - 1;
}

std::uint64_t EventQueue::push(double time, Event::Kind kind, int arc,
                               const compile::FlatMsg& fweight,
                               std::vector<int> path) {
  MRT_REQUIRE(time >= now_);
  Event e;
  e.time = time;
  e.seq = next_seq_++;
  e.kind = kind;
  e.arc = arc;
  e.fweight = fweight;
  e.path = std::move(path);
  if (kind == Event::Kind::Deliver) ++pending_delivers_;
  heap_.push(std::move(e));
  if (heap_.size() > high_water_) high_water_ = heap_.size();
  return next_seq_ - 1;
}

Event EventQueue::pop() {
  MRT_REQUIRE(!heap_.empty());
  Event e = heap_.top();
  heap_.pop();
  ++pops_;
  now_ = e.time;
  if (e.kind == Event::Kind::Deliver) --pending_delivers_;
  return e;
}

}  // namespace mrt
