// Asynchronous path-vector protocol over an order transform.
//
// Each node keeps a RIB-in of the latest advertisement per out-arc, selects
// the ≲-best extension, and advertises its selection to its in-neighbours
// over per-arc FIFO channels with random delays. This is the protocol whose
// stable states are the *local optima* of the algebra; with an increasing
// (I) algebra it converges under every schedule (Sobrinho), and without I
// it can oscillate forever — both are measured by the experiments
// (convergence census, BAD-GADGET divergence, failure reconvergence).
#pragma once

#include "mrt/compile/engine.hpp"
#include "mrt/dyn/delta.hpp"
#include "mrt/routing/labeled_graph.hpp"
#include "mrt/sim/event_queue.hpp"
#include "mrt/sim/scheduler.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

struct SimEventLog {
  double time;
  int node;
  std::string what;
};

/// A windowed per-arc fault behaviour, injected before run(). All random
/// draws it causes come from a dedicated fault Rng, so the base message
/// schedule of a seed is byte-identical with and without faults installed.
struct ArcFault {
  int arc = -1;
  /// Active window [from, until): loss applies to deliveries inside it,
  /// jitter and duplication to sends inside it.
  double from = 0.0;
  double until = 0.0;
  /// Probability that a message delivered during the window is lost.
  double loss_p = 0.0;
  /// Extra latency added to each send: extra_delay + U[0, jitter).
  double extra_delay = 0.0;
  double jitter = 0.0;
  /// Probability that a send during the window is duplicated (one extra
  /// copy, queued FIFO behind the original with its own latency draw).
  double dup_p = 0.0;
};

/// Per-run protocol dynamics, always collected (plain member increments —
/// cheap and deterministic). Published into the obs registry under "sim.*"
/// when observability is enabled.
struct SimStats {
  long messages_sent = 0;        ///< advertisements enqueued (routes + withdrawals)
  long withdrawals_sent = 0;     ///< nullopt advertisements enqueued
  long deliveries = 0;           ///< messages delivered (== SimResult::events)
  long withdrawals_delivered = 0;
  long dropped_dead_arc = 0;     ///< messages lost: arc was down at delivery time
  long reselects = 0;            ///< best-route recomputations
  long selection_changes = 0;    ///< total flaps across all nodes
  long link_down_events = 0;
  long link_up_events = 0;
  // Fault-injection accounting (mrt::chaos). Every injected fault leaves a
  // trace here so campaigns can assert conservation instead of trusting the
  // injector.
  long dropped_injected_loss = 0;  ///< deliveries eaten by an ArcFault window
  long duplicated_messages = 0;    ///< extra copies enqueued by dup faults
  long jittered_messages = 0;      ///< sends stretched by a jitter window
  long node_crash_events = 0;
  long node_restart_events = 0;
  long resync_events = 0;          ///< post-loss-window re-advertisements
  long in_flight_at_end = 0;       ///< Deliver events still queued at exit
  /// Deliveries discarded as stale under a reordering scheduler (an older
  /// send arrived after a newer one on the same arc — latest send wins).
  /// Counted inside `deliveries`, so conservation identities still hold.
  long stale_discarded = 0;
  std::size_t queue_high_water = 0;  ///< deepest event-queue backlog
};

/// One quiescent instant of a run: the Deliver queue drained and either the
/// topology or some node's selection had changed since the previous point.
/// At such an instant every node has processed its neighbours' latest
/// advertisements, so (absent in-window message loss) the snapshot is a
/// stable state of the protocol — a local optimum of the surviving
/// topology — which is exactly what the oracle-during-the-run chaos mode
/// checks. The deltas chain: composing them in order (starting from the
/// all-up network) reproduces each point's admin state, and
/// SimDeltaSource replays them as a stream.
struct QuiescentPoint {
  double time = 0.0;
  /// Topology edits since the previous point (empty for e.g. the initial
  /// convergence instant). Admin-state semantics, like SimResult::delta.
  dyn::TopologyDelta delta;
  /// Protocol state at this instant (weights + witness arcs, decoded even
  /// in compiled runs).
  Routing routing;
  /// Surviving topology at this instant (same semantics as SimResult's).
  std::vector<bool> arc_alive;
  std::vector<bool> node_up;
};

struct SimResult {
  bool converged = false;  ///< queue drained below the event cap
  long events = 0;         ///< messages delivered
  /// Activation rounds to quiescence, counted as message generations: round
  /// r+1 starts once every Deliver enqueued before round r's sequence
  /// watermark has left the queue. Each generation subsumes at least one
  /// Üresin–Dubois pseudocycle, so for a strictly increasing algebra this
  /// count is bounded by the Daggitt–Griffin theorem (see mrt::adv).
  long rounds = 0;
  double finish_time = 0.0;
  Routing routing;
  std::vector<int> flaps;  ///< selection changes per node
  /// Node paths of the selected routes (only with loop_detection).
  std::vector<std::vector<int>> paths;
  /// The surviving topology at exit: arc i usable, node v not crashed.
  /// The chaos oracles validate `routing` against exactly this subgraph.
  std::vector<bool> arc_alive;
  std::vector<bool> node_up;
  /// The same surviving topology as a delta from the all-up network:
  /// applying it to a freshly bound dyn::DynNet reproduces `arc_alive` /
  /// `node_up` exactly, so fault outcomes feed Solver::update directly.
  dyn::TopologyDelta delta;
  /// Quiescent-instant log (only with SimOptions::record_quiescent). The
  /// composition of all `quiescent[i].delta` plus the trailing correction
  /// SimDeltaSource appends equals `delta`.
  std::vector<QuiescentPoint> quiescent;
  SimStats stats;
};

class PathVectorSim {
 public:
  /// When `engine` is non-null and its algebra compiled (and the flat layout
  /// fits a FlatMsg), the RIB-in, selections, and message payloads live as
  /// flat weight words for the whole run — decoded only into the returned
  /// SimResult and for tracing. All random draws happen at the same points
  /// in both modes, so a seed's schedule (and result) is identical compiled
  /// or boxed.
  PathVectorSim(const OrderTransform& alg, LabeledGraph net, int dest,
                Value origin, SimOptions opts = {},
                const compile::WeightEngine* engine = nullptr);

  /// True if this run executes on the compiled flat path.
  bool compiled() const { return flat_; }

  /// The journal stream this sim's flight-recorder records carry (one fresh
  /// id per PathVectorSim, drawn at construction).
  std::uint32_t journal_stream() const { return jstream_; }

  /// Injects a link failure / recovery at absolute time `t` (must be called
  /// before run()).
  void schedule_link_down(double t, int arc);
  void schedule_link_up(double t, int arc);

  /// Injects a node crash at `t`: every incident arc goes down, the node's
  /// RIB-in and selection are wiped, and neighbours reselect as their
  /// sessions die. A later restart brings the incident arcs back (where the
  /// peer is also up) and re-originates if the node is the destination.
  void schedule_node_down(double t, int node);
  void schedule_node_up(double t, int node);

  /// Schedules a resync on `arc` at `t`: the arc's head re-advertises its
  /// current selection, modelling the retransmission that recovers state
  /// after a message-loss window. FaultPlan::apply emits one per loss fault.
  void schedule_resync(double t, int arc);

  /// Installs a windowed per-arc fault behaviour (loss / jitter / dup).
  void add_arc_fault(const ArcFault& f);

  /// Installs a message-schedule policy (non-owning; must outlive run()).
  /// Default: the built-in FifoJitterScheduler, whose schedules are
  /// byte-identical per seed to the pre-seam simulator.
  void set_scheduler(Scheduler* s);

  /// Runs to quiescence or to the event cap.
  SimResult run();

 private:
  void advertise(int node, double now);
  void reselect(int node, double now);
  void reselect_boxed(int node, double now);
  void reselect_flat(int node, double now);
  std::optional<Value> candidate_via(int arc) const;
  /// Flat analogue of candidate_via: fills `out` (present=false if no
  /// usable candidate).
  void candidate_via_flat(int arc, compile::FlatMsg* out) const;
  bool arc_alive(int arc) const;
  const ArcFault* active_fault(int arc, double now) const;
  void crash_node(int node, double now);
  void restart_node(int node, double now);
  /// Current protocol state as a boxed Routing (decodes the flat mirrors in
  /// compiled runs). Consumes no RNG draws.
  Routing snapshot_routing() const;
  /// Appends a QuiescentPoint if topology or routing changed since the last
  /// recorded one. Called when the Deliver queue is empty.
  void maybe_record_quiescent(double now);

  const OrderTransform& alg_;
  LabeledGraph net_;
  int dest_;
  Value origin_;
  SimOptions opts_;
  Rng rng_;

  /// Draws for injected faults only (seeded from opts.seed), so installing
  /// faults never perturbs the base schedule stream in rng_.
  Rng fault_rng_;

  // Compiled mode: per-arc label programs plus flat mirrors of the RIB-in
  // and selection state (the boxed vectors stay untouched until decode).
  compile::CompiledNet cnet_;
  bool flat_ = false;
  compile::FlatMsg origin_flat_;
  std::vector<compile::FlatMsg> rib_in_flat_;   // per arc id
  std::vector<compile::FlatMsg> selected_flat_; // per node

  EventQueue queue_;
  std::vector<std::optional<Value>> rib_in_;   // per arc id
  std::vector<std::vector<int>> rib_in_path_;  // per arc id
  std::vector<bool> arc_up_;                   // per arc id (admin state)
  std::vector<bool> node_up_;                  // per node (crash state)
  std::vector<std::vector<ArcFault>> arc_faults_;  // per arc id
  std::vector<std::optional<Value>> selected_; // per node
  std::vector<int> selected_arc_;              // per node
  std::vector<std::vector<int>> selected_path_;// per node
  std::vector<int> flaps_;                     // per node
  long delivered_ = 0;
  SimStats stats_;
  std::uint32_t jstream_ = 0;                  // flight-recorder stream id

  // Schedule policy seam. fifo_ is the built-in default; sched_ points at it
  // unless set_scheduler installed another policy.
  FifoJitterScheduler fifo_;
  Scheduler* sched_ = &fifo_;
  bool sched_reorders_ = false;              // cached sched_->reorders()
  std::vector<std::uint64_t> arc_seq_floor_; // per arc: newest accepted seq+1

  // Quiescent-instant log (opts_.record_quiescent): the previously recorded
  // admin/crash masks and routing, against which the next point diffs.
  std::vector<QuiescentPoint> quiescent_;
  std::vector<bool> q_arc_up_;   // admin mask at the last recorded point
  std::vector<bool> q_node_up_;  // crash mask at the last recorded point
  Routing q_routing_;            // routing at the last recorded point
  bool q_have_ = false;          // any point recorded yet?

  // Activation-round (message-generation) accounting; see SimResult::rounds.
  long rounds_ = 0;
  std::uint64_t round_mark_ = 0;     // seq watermark of the current round
  std::size_t round_pending_ = 0;    // Delivers below the watermark still queued
};

}  // namespace mrt
