// Asynchronous path-vector protocol over an order transform.
//
// Each node keeps a RIB-in of the latest advertisement per out-arc, selects
// the ≲-best extension, and advertises its selection to its in-neighbours
// over per-arc FIFO channels with random delays. This is the protocol whose
// stable states are the *local optima* of the algebra; with an increasing
// (I) algebra it converges under every schedule (Sobrinho), and without I
// it can oscillate forever — both are measured by the experiments
// (convergence census, BAD-GADGET divergence, failure reconvergence).
#pragma once

#include "mrt/routing/labeled_graph.hpp"
#include "mrt/sim/event_queue.hpp"
#include "mrt/support/rng.hpp"

namespace mrt {

struct SimOptions {
  std::uint64_t seed = 1;
  /// Message delay is drawn uniformly from [min_delay, max_delay].
  double min_delay = 0.1;
  double max_delay = 1.0;
  /// Divergence declaration threshold.
  long max_events = 100'000;
  /// Treat ⊤-weighted candidates as unusable (Sobrinho's φ — "invalid
  /// route"): they are never selected and thus never advertised as routes.
  bool drop_top_routes = false;
  /// Carry the node path in advertisements and reject routes whose path
  /// already contains the learning node (BGP's AS-path loop detection).
  bool loop_detection = false;
};

struct SimEventLog {
  double time;
  int node;
  std::string what;
};

/// Per-run protocol dynamics, always collected (plain member increments —
/// cheap and deterministic). Published into the obs registry under "sim.*"
/// when observability is enabled.
struct SimStats {
  long messages_sent = 0;        ///< advertisements enqueued (routes + withdrawals)
  long withdrawals_sent = 0;     ///< nullopt advertisements enqueued
  long deliveries = 0;           ///< messages delivered (== SimResult::events)
  long withdrawals_delivered = 0;
  long dropped_dead_arc = 0;     ///< messages lost: arc was down at delivery time
  long reselects = 0;            ///< best-route recomputations
  long selection_changes = 0;    ///< total flaps across all nodes
  long link_down_events = 0;
  long link_up_events = 0;
  std::size_t queue_high_water = 0;  ///< deepest event-queue backlog
};

struct SimResult {
  bool converged = false;  ///< queue drained below the event cap
  long events = 0;         ///< messages delivered
  double finish_time = 0.0;
  Routing routing;
  std::vector<int> flaps;  ///< selection changes per node
  /// Node paths of the selected routes (only with loop_detection).
  std::vector<std::vector<int>> paths;
  SimStats stats;
};

class PathVectorSim {
 public:
  PathVectorSim(const OrderTransform& alg, LabeledGraph net, int dest,
                Value origin, SimOptions opts = {});

  /// Injects a link failure / recovery at absolute time `t` (must be called
  /// before run()).
  void schedule_link_down(double t, int arc);
  void schedule_link_up(double t, int arc);

  /// Runs to quiescence or to the event cap.
  SimResult run();

 private:
  void advertise(int node, double now);
  void reselect(int node, double now);
  std::optional<Value> candidate_via(int arc) const;

  const OrderTransform& alg_;
  LabeledGraph net_;
  int dest_;
  Value origin_;
  SimOptions opts_;
  Rng rng_;

  EventQueue queue_;
  std::vector<std::optional<Value>> rib_in_;   // per arc id
  std::vector<std::vector<int>> rib_in_path_;  // per arc id
  std::vector<bool> arc_up_;                   // per arc id
  std::vector<double> arc_last_delivery_;      // per arc id (FIFO)
  std::vector<std::optional<Value>> selected_; // per node
  std::vector<int> selected_arc_;              // per node
  std::vector<std::vector<int>> selected_path_;// per node
  std::vector<int> flaps_;                     // per node
  long delivered_ = 0;
  SimStats stats_;
};

}  // namespace mrt
