#!/usr/bin/env bash
# Run the perf benchmarks with --json and collect the records into one
# machine-readable file at the repo root: BENCH_obs.json. Then run the
# census benches at MRT_THREADS=1 and MRT_THREADS=$(nproc), fail loudly if
# their stdout tables differ (the mrt::par determinism contract), and merge
# the timed records into BENCH_par.json. Further sections gate the chaos
# campaign (BENCH_chaos.json), the compiled kernels (BENCH_compile.json),
# the incremental solvers (BENCH_dyn.json), the batched routing tables
# (BENCH_rib.json), the adversarial-schedule certificates (BENCH_adv.json),
# and the routing daemon (BENCH_serve.json) the same way.
#
# Every gate is mandatory: a missing bench binary fails the script rather
# than skipping the gate. Before declaring success the script re-opens every
# BENCH_*.json it emitted and verifies the file parses and carries the keys
# its gate checked — a bench that silently wrote a truncated or empty record
# fails here instead of poisoning the committed baseline.
#
# Usage: scripts/bench_json.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="BENCH_obs.json"

if [ ! -d "$BUILD/bench" ]; then
  echo "bench_json.sh: no $BUILD/bench — build first (cmake -B $BUILD && cmake --build $BUILD -j)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

# Snapshot the committed baseline before this run overwrites it: the
# journal-off overhead gate below compares fresh wall clocks against it.
if [ -f "$OUT" ]; then
  cp "$OUT" "$tmpdir/obs.baseline.json"
fi

records=()
# A missing binary is a broken build, not a reason to skip a gate.
require_bin() {
  if [ ! -x "$1" ]; then
    echo "bench_json.sh: FATAL — $1 not built (cmake --build $BUILD -j)" >&2
    exit 1
  fi
}

# MRT_JOURNAL=0 pins the journal off: these records are the baseline the
# flight-recorder overhead gate below holds future runs to.
for b in perf_routing perf_inference; do
  bin="$BUILD/bench/$b"
  require_bin "$bin"
  echo "== $b =="
  MRT_JOURNAL=0 "$bin" --json "$tmpdir/$b.json"
  records+=("$tmpdir/$b.json")
done

# Merge the per-bench records into a single JSON array.
{
  printf '['
  first=1
  for r in "${records[@]}"; do
    [ "$first" -eq 1 ] || printf ','
    first=0
    cat "$r"
  done
  printf ']\n'
} > "$OUT"
echo "wrote $OUT (${#records[@]} records)"

# --- Journal-off overhead gate -------------------------------------------
# Two checks on the fresh records:
#   1. quantiles: every record exports a histograms section with p50/p99
#      (the log-2-bucket latency estimates the journal PR added);
#   2. overhead: with MRT_JOURNAL=0 the flight recorder must cost nothing —
#      fresh perf wall clocks stay within noise (<=1.30x) of the committed
#      baseline snapshot taken above. Skipped (loudly) on a first run with
#      no baseline to compare against.
python3 - "$tmpdir/perf_routing.json" "$tmpdir/perf_inference.json" \
  "$tmpdir/obs.baseline.json" <<'PY'
import json, os, sys
fresh = {json.load(open(p))["bench"]: json.load(open(p))
         for p in sys.argv[1:3]}
bad = []
for name, rec in fresh.items():
    if "histograms" not in rec:
        bad.append(f"{name}: no histograms section in the JSON record")
        continue
    for hname, h in rec["histograms"].items():
        for q in ("p50", "p90", "p99"):
            if q not in h:
                bad.append(f"{name}: histogram {hname} missing {q}")
# The routing record must actually carry latency quantiles (the *_ns
# ScopedTimer histograms); inference has no timed regions and may be empty.
routing_ns = [k for k in fresh["perf_routing"].get("histograms", {})
              if k.endswith("_ns")]
if not routing_ns:
    bad.append("perf_routing: no *_ns latency histograms in the record")
baseline_path = sys.argv[3]
if os.path.exists(baseline_path):
    baseline = {r["bench"]: r for r in json.load(open(baseline_path))}
    for name, rec in fresh.items():
        base = baseline.get(name)
        if base is None:
            continue  # new bench since the committed baseline
        ratio = rec["wall_s"] / base["wall_s"]
        if ratio > 1.30:
            bad.append(f"{name}: wall_s {rec['wall_s']:.2f}s is {ratio:.2f}x "
                       f"the committed baseline {base['wall_s']:.2f}s "
                       f"(> 1.30x noise bound) with MRT_JOURNAL=0")
        else:
            print(f"   {name}: {ratio:.2f}x baseline with the journal off "
                  f"(bound 1.30x)")
else:
    print("   no committed BENCH_obs.json baseline: overhead ratio skipped")
if bad:
    print("bench_json.sh: JOURNAL GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print("   journal gate passed: quantiles exported, journal-off within noise")
PY

# --- Parallel determinism check + BENCH_par.json -------------------------
PAR_OUT="BENCH_par.json"
NPROC="$(nproc)"
par_records=()
for b in fig2_global_exact fig3_local_exact; do
  bin="$BUILD/bench/$b"
  require_bin "$bin"
  echo "== $b (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$bin" --json "$tmpdir/$b.t1.json" > "$tmpdir/$b.t1.out"
  MRT_THREADS="$NPROC" "$bin" --json "$tmpdir/$b.tn.json" > "$tmpdir/$b.tn.out"
  if ! diff -u "$tmpdir/$b.t1.out" "$tmpdir/$b.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — $b output depends on MRT_THREADS" >&2
    exit 1
  fi
  echo "   tables bit-identical at 1 and $NPROC threads"
  par_records+=("$tmpdir/$b.t1.json" "$tmpdir/$b.tn.json")
done

if [ "${#par_records[@]}" -gt 0 ]; then
  {
    printf '['
    first=1
    for r in "${par_records[@]}"; do
      [ "$first" -eq 1 ] || printf ','
      first=0
      cat "$r"
    done
    printf ']\n'
  } > "$PAR_OUT"
  echo "wrote $PAR_OUT (${#par_records[@]} records)"
fi

# --- Chaos campaign determinism check + BENCH_chaos.json -----------------
# The verdict table (stdout) must be byte-identical at any MRT_THREADS —
# the mrt::chaos campaign fans runs out through mrt::par under the same
# determinism contract as the census benches above.
CHAOS_OUT="BENCH_chaos.json"
bin="$BUILD/bench/chaos_campaign"
require_bin "$bin"
{
  echo "== chaos_campaign (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$bin" --json "$tmpdir/chaos.t1.json" > "$tmpdir/chaos.t1.out"
  MRT_THREADS="$NPROC" "$bin" --json "$tmpdir/chaos.tn.json" \
    > "$tmpdir/chaos.tn.out"
  if ! diff -u "$tmpdir/chaos.t1.out" "$tmpdir/chaos.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — chaos verdict table depends on MRT_THREADS" >&2
    exit 1
  fi
  echo "   verdict tables bit-identical at 1 and $NPROC threads"
  printf '[' > "$CHAOS_OUT"
  cat "$tmpdir/chaos.t1.json" >> "$CHAOS_OUT"
  printf ',' >> "$CHAOS_OUT"
  cat "$tmpdir/chaos.tn.json" >> "$CHAOS_OUT"
  printf ']\n' >> "$CHAOS_OUT"
  echo "wrote $CHAOS_OUT (2 records)"
}

# --- Compiled-kernel gates + BENCH_compile.json --------------------------
# Three gates on mrt::compile:
#   1. speedup: perf_compile must show ≥2× on deep-lex (depth ≥ 3)
#      dijkstra/bellman and zero fallbacks for the paper algebras;
#   2. equivalence: the chaos verdict table must be byte-identical with
#      MRT_COMPILE=0 (boxed) and default (compiled), and the compiled
#      campaign must be ≥1.5× faster by wall clock;
#   3. determinism: the compiled campaign table must be byte-identical at
#      MRT_THREADS=1 and $(nproc).
COMPILE_OUT="BENCH_compile.json"
pc="$BUILD/bench/perf_compile"
cc="$BUILD/bench/chaos_campaign"
require_bin "$pc"
require_bin "$cc"
{
  echo "== perf_compile =="
  "$pc" --json "$tmpdir/compile.json"

  echo "== chaos_campaign (MRT_COMPILE=0 vs compiled) =="
  MRT_COMPILE=0 "$cc" --json "$tmpdir/chaos.boxed.json" \
    > "$tmpdir/chaos.boxed.out"
  "$cc" --json "$tmpdir/chaos.compiled.json" > "$tmpdir/chaos.compiled.out"
  if ! diff -u "$tmpdir/chaos.boxed.out" "$tmpdir/chaos.compiled.out"; then
    echo "bench_json.sh: EQUIVALENCE VIOLATION — chaos verdicts differ between boxed and compiled" >&2
    exit 1
  fi
  echo "   verdict tables bit-identical boxed vs compiled"

  echo "== chaos_campaign compiled (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$cc" --json "$tmpdir/chaos.c.t1.json" \
    > "$tmpdir/chaos.c.t1.out"
  MRT_THREADS="$NPROC" "$cc" --json "$tmpdir/chaos.c.tn.json" \
    > "$tmpdir/chaos.c.tn.out"
  if ! diff -u "$tmpdir/chaos.c.t1.out" "$tmpdir/chaos.c.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — compiled chaos verdicts depend on MRT_THREADS" >&2
    exit 1
  fi
  echo "   compiled verdict tables bit-identical at 1 and $NPROC threads"

  python3 - "$tmpdir/compile.json" "$tmpdir/chaos.boxed.json" \
    "$tmpdir/chaos.compiled.json" <<'PY'
import json, sys
compile_rec = json.load(open(sys.argv[1]))
boxed = json.load(open(sys.argv[2]))
flat = json.load(open(sys.argv[3]))
m = compile_rec["metrics"]
bad = []
for k in ("speedup.dijkstra.depth3", "speedup.dijkstra.depth4",
          "speedup.bellman.depth3", "speedup.bellman.depth4"):
    if m.get(k, 0.0) < 2.0:
        bad.append(f"{k} = {m.get(k, 0.0):.2f} < 2.0")
if m.get("fallbacks", 1.0) != 0.0:
    bad.append(f"compile.fallbacks = {m.get('fallbacks')} != 0")
ratio = boxed["wall_s"] / flat["wall_s"]
if ratio < 1.5:
    bad.append(f"chaos wall clock boxed/compiled = {ratio:.2f} < 1.5")
if bad:
    print("bench_json.sh: COMPILE GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print(f"   gates passed: deep-lex >=2x, fallbacks 0, "
      f"chaos {ratio:.2f}x compiled")
json.dump([compile_rec, boxed, flat], open("BENCH_compile.json", "w"))
print()
PY
  echo "wrote $COMPILE_OUT (3 records)"
}

# --- Incremental-solver gates + BENCH_dyn.json ---------------------------
# Four gates on mrt::dyn:
#   1. speedup: perf_dyn must show warm flap absorption ≥2× over cold
#      re-solves on stacked-lex networks (≥3× for dijkstra at depth 3),
#      with the affected set staying a small fraction of the network;
#   2. equivalence: perf_dyn byte-compares every warm routing against its
#      cold twin internally (exit 1 on divergence), and the chaos verdict
#      table must be byte-identical with MRT_DYN=0 and default (dyn on);
#   3. wall clock: the flap-heavy campaign must not be slower with dyn on
#      (end-to-end ≥1.0×) and the global-truth checks themselves ≥1.1×;
#   4. determinism: the dyn-on chaos verdict table must be byte-identical
#      at MRT_THREADS=1 and $(nproc).
DYN_OUT="BENCH_dyn.json"
pd="$BUILD/bench/perf_dyn"
require_bin "$pd"
{
  echo "== perf_dyn =="
  "$pd" --json "$tmpdir/dyn.json"

  echo "== chaos_campaign (MRT_DYN=0 vs dyn) =="
  MRT_DYN=0 "$cc" --json "$tmpdir/chaos.nodyn.json" \
    > "$tmpdir/chaos.nodyn.out"
  "$cc" --json "$tmpdir/chaos.dyn.json" > "$tmpdir/chaos.dyn.out"
  if ! diff -u "$tmpdir/chaos.nodyn.out" "$tmpdir/chaos.dyn.out"; then
    echo "bench_json.sh: EQUIVALENCE VIOLATION — chaos verdicts differ between MRT_DYN=0 and dyn" >&2
    exit 1
  fi
  echo "   verdict tables bit-identical with and without dyn"

  echo "== chaos_campaign dyn (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$cc" --json "$tmpdir/chaos.d.t1.json" \
    > "$tmpdir/chaos.d.t1.out"
  MRT_THREADS="$NPROC" "$cc" --json "$tmpdir/chaos.d.tn.json" \
    > "$tmpdir/chaos.d.tn.out"
  if ! diff -u "$tmpdir/chaos.d.t1.out" "$tmpdir/chaos.d.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — dyn chaos verdicts depend on MRT_THREADS" >&2
    exit 1
  fi
  echo "   dyn verdict tables bit-identical at 1 and $NPROC threads"

  python3 - "$tmpdir/dyn.json" "$tmpdir/chaos.nodyn.json" \
    "$tmpdir/chaos.dyn.json" <<'PY'
import json, sys
dyn_rec = json.load(open(sys.argv[1]))
nodyn = json.load(open(sys.argv[2]))
with_dyn = json.load(open(sys.argv[3]))
m = dyn_rec["metrics"]
bad = []
for k, floor in (("speedup.update.dijkstra.depth1", 2.0),
                 ("speedup.update.bellman.depth1", 2.0),
                 ("speedup.update.dijkstra.depth3", 3.0),
                 ("speedup.update.bellman.depth3", 2.5)):
    if m.get(k, 0.0) < floor:
        bad.append(f"{k} = {m.get(k, 0.0):.2f} < {floor}")
for k in ("affected_pct.dijkstra.depth1", "affected_pct.bellman.depth1",
          "affected_pct.dijkstra.depth3", "affected_pct.bellman.depth3"):
    if m.get(k, 100.0) > 25.0:
        bad.append(f"{k} = {m.get(k, 100.0):.1f}% > 25% of the network")
if m.get("speedup.chaos_flaps", 0.0) < 1.0:
    bad.append(f"flap-heavy campaign slower with dyn on: "
               f"{m.get('speedup.chaos_flaps', 0.0):.2f} < 1.0")
if m.get("speedup.chaos_truth_check", 0.0) < 1.1:
    bad.append(f"global-truth checks = "
               f"{m.get('speedup.chaos_truth_check', 0.0):.2f}x < 1.1x")
if m.get("identical", 0.0) != 1.0:
    bad.append("warm/cold byte-identity check failed inside perf_dyn")
if m.get("chaos_verdicts_identical", 0.0) != 1.0:
    bad.append("dyn-toggle verdict tables differ inside perf_dyn")
if bad:
    print("bench_json.sh: DYN GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print(f"   gates passed: warm flaps >=2-3x, affected <=25%, "
      f"campaign {m['speedup.chaos_flaps']:.2f}x, "
      f"truth checks {m['speedup.chaos_truth_check']:.2f}x")
json.dump([dyn_rec, nodyn, with_dyn], open("BENCH_dyn.json", "w"))
print()
PY
  echo "wrote $DYN_OUT (3 records)"
}

# --- Batched routing-table gates + BENCH_rib.json -------------------------
# Six gates on mrt::rib:
#   1. speedup: one batched cold solve over 64 destinations of a ≥1k-node
#      Gao–Rexford internet must be ≥3× faster than 64 independent
#      standalone cold solves;
#   2. warm maintenance: the 10k-node flap workload must report the
#      per-destination affected-set stats (mean and max %), the mean
#      must stay a small fraction of the network, every timed update must
#      actually take the warm path (rib.warm.baseline_warm == 1), and the
#      peak-RSS footprint metric must be present (rib.peak_rss_mb);
#   3. equivalence: perf_rib byte-compares every batched column against a
#      standalone solver and a fresh cold build internally (exit 1 on
#      divergence) — `identical` must be 1;
#   4. invariance: the same delta sequence under MRT_THREADS ∈ {1,4},
#      MRT_DYN ∈ {on,off}, and with/without a WeightEngine must produce
#      byte-identical columns (each axis is a 0/1 metric pinned to 1);
#   5. SIMD speedup: the 4-word lex-stack cold solve must run ≥1.5× faster
#      with the vertical kernels than with MRT_SIMD=0 (interleaved A/B,
#      speedup.rib.simd);
#   6. SIMD identity: the SIMD and scalar tables must be byte-identical
#      (rib.simd_invariant == 1).
RIB_OUT="BENCH_rib.json"
pr="$BUILD/bench/perf_rib"
require_bin "$pr"
{
  echo "== perf_rib =="
  "$pr" --json "$tmpdir/rib.json"

  python3 - "$tmpdir/rib.json" <<'PY'
import json, sys
rib_rec = json.load(open(sys.argv[1]))
m = rib_rec["metrics"]
bad = []
if m.get("speedup.rib.cold_batched", 0.0) < 3.0:
    bad.append(f"speedup.rib.cold_batched = "
               f"{m.get('speedup.rib.cold_batched', 0.0):.2f} < 3.0")
for k in ("rib.warm.affected_pct", "rib.warm.affected_max_pct"):
    if k not in m:
        bad.append(f"{k} missing from the perf_rib record")
if m.get("rib.warm.affected_pct", 100.0) > 25.0:
    bad.append(f"rib.warm.affected_pct = "
               f"{m.get('rib.warm.affected_pct', 100.0):.1f}% > 25%")
if "rib.peak_rss_mb" not in m:
    bad.append("rib.peak_rss_mb missing from the perf_rib record")
if m.get("speedup.rib.simd", 0.0) < 1.5:
    bad.append(f"speedup.rib.simd = "
               f"{m.get('speedup.rib.simd', 0.0):.2f} < 1.5")
for k in ("rib.thread_invariant", "rib.toggle_invariant",
          "rib.compile_invariant", "rib.simd_invariant",
          "rib.warm.baseline_warm", "identical"):
    if m.get(k, 0.0) != 1.0:
        bad.append(f"{k} = {m.get(k)} != 1")
if bad:
    print("bench_json.sh: RIB GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print(f"   gates passed: cold batched "
      f"{m['speedup.rib.cold_batched']:.2f}x >= 3x, simd "
      f"{m['speedup.rib.simd']:.2f}x >= 1.5x, warm affected "
      f"{m['rib.warm.affected_pct']:.2f}% (max "
      f"{m['rib.warm.affected_max_pct']:.2f}%), "
      f"invariance thread/dyn/compile/simd all 1")
json.dump([rib_rec], open("BENCH_rib.json", "w"))
PY
  echo "wrote $RIB_OUT (1 record)"
}

# --- Adversarial-schedule gates + BENCH_adv.json ---------------------------
# Three gates on mrt::adv:
#   1. validity: every certificate in the (algebra × topology × schedule)
#      sweep must match theory — WithinBound for exhaustively-increasing
#      algebras, an honest Converged/Diverged otherwise
#      (adv.cert_validity == 1.0);
#   2. falsification: zero Daggitt–Griffin bound violations
#      (adv.bound_violations == 0) — a violation would be a theorem
#      falsification, not a perf regression;
#   3. overhead: the Scheduler seam must stay cheap — adversarial runs cost
#      at most 1.25× the default jittered FIFO per delivered event.
ADV_OUT="BENCH_adv.json"
pa="$BUILD/bench/adv_schedules"
require_bin "$pa"
{
  echo "== adv_schedules =="
  "$pa" --json "$tmpdir/adv.json"

  python3 - "$tmpdir/adv.json" <<'PY'
import json, sys
adv_rec = json.load(open(sys.argv[1]))
m = adv_rec["metrics"]
bad = []
if m.get("adv.cert_validity", 0.0) != 1.0:
    bad.append(f"adv.cert_validity = {m.get('adv.cert_validity', 0.0)} != 1.0")
if m.get("adv.bound_violations", 1.0) != 0.0:
    bad.append(f"adv.bound_violations = {m.get('adv.bound_violations')} != 0")
if m.get("adv.overhead_per_event", 99.0) > 1.25:
    bad.append(f"adv.overhead_per_event = "
               f"{m.get('adv.overhead_per_event', 99.0):.2f} > 1.25")
if bad:
    print("bench_json.sh: ADV GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print(f"   gates passed: {int(m['adv.runs'])} certificates all valid, "
      f"0 bound violations, seam overhead "
      f"{m['adv.overhead_per_event']:.2f}x <= 1.25x")
json.dump([adv_rec], open("BENCH_adv.json", "w"))
PY
  echo "wrote $ADV_OUT (1 record)"
}

# --- Routing-daemon gates + BENCH_serve.json -------------------------------
# Four gates on mrt::serve (perf_serve drains a 12k-delta replay log through
# a warm daemon over a 512-node Gao–Rexford internet):
#   1. throughput: sustained drain rate ≥300 deltas/sec end to end (decode +
#      warm update + route-change diff; ~1000/s on the reference machine);
#   2. latency: p99 of the serve.update_ns histogram ≤10 ms and nonzero
#      (~2 ms on the reference machine);
#   3. warmth: every timed update must take the warm path and invalidate at
#      least one arc (serve.warm == 1) — the bench refuses to report
#      accidentally-cold numbers;
#   4. identity: the drained table must be byte-identical to one
#      concatenated batch update and to a cold re-solve of the end state
#      (serve.stream_batch_identical == 1).
SERVE_OUT="BENCH_serve.json"
ps="$BUILD/bench/perf_serve"
require_bin "$ps"
{
  echo "== perf_serve =="
  "$ps" --json "$tmpdir/serve.json"

  python3 - "$tmpdir/serve.json" <<'PY'
import json, sys
serve_rec = json.load(open(sys.argv[1]))
m = serve_rec["metrics"]
bad = []
if m.get("serve.deltas", 0.0) < 10000:
    bad.append(f"serve.deltas = {m.get('serve.deltas', 0.0):.0f} < 10000")
if m.get("serve.deltas_per_sec", 0.0) < 300.0:
    bad.append(f"serve.deltas_per_sec = "
               f"{m.get('serve.deltas_per_sec', 0.0):.1f} < 300")
p99 = m.get("serve.p99_update_ns", 0.0)
if not (0.0 < p99 <= 10e6):
    bad.append(f"serve.p99_update_ns = {p99:.0f} outside (0, 10ms]")
for k in ("serve.warm", "serve.stream_batch_identical"):
    if m.get(k, 0.0) != 1.0:
        bad.append(f"{k} = {m.get(k)} != 1")
if bad:
    print("bench_json.sh: SERVE GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print(f"   gates passed: {int(m['serve.deltas'])} deltas at "
      f"{m['serve.deltas_per_sec']:.0f}/s >= 300/s, p99 "
      f"{p99 / 1e6:.2f}ms <= 10ms, all warm, stream==batch==cold")
json.dump([serve_rec], open("BENCH_serve.json", "w"))
PY
  echo "wrote $SERVE_OUT (1 record)"
}

# --- Final sweep: every emitted BENCH_*.json must parse and carry its
# gated keys. The merge steps above concatenate per-bench files with
# printf/cat, so a bench that exited 0 after writing a truncated record
# would previously produce an unparseable committed baseline and only be
# noticed one PR later — validate everything before declaring success.
python3 - <<'PY'
import json, sys
required = {
    "BENCH_obs.json":     {"perf_routing": ["histograms"],
                           "perf_inference": []},
    "BENCH_par.json":     {"fig2_global_exact": ["wall_s"],
                           "fig3_local_exact": ["wall_s"]},
    "BENCH_chaos.json":   {"chaos_campaign": ["wall_s"]},
    "BENCH_compile.json": {"perf_compile": ["metrics/speedup.dijkstra.depth3",
                                            "metrics/speedup.bellman.depth3"]},
    "BENCH_dyn.json":     {"perf_dyn": ["metrics/speedup.update.bellman.depth1",
                                        "metrics/identical"]},
    "BENCH_rib.json":     {"perf_rib": ["metrics/speedup.rib.cold_batched",
                                        "metrics/rib.warm.affected_pct",
                                        "metrics/rib.warm.affected_max_pct",
                                        "metrics/speedup.rib.simd",
                                        "metrics/rib.simd_invariant",
                                        "metrics/rib.peak_rss_mb",
                                        "metrics/rib.warm.baseline_warm",
                                        "metrics/identical"]},
    "BENCH_adv.json":     {"adv_schedules": ["metrics/adv.cert_validity",
                                             "metrics/adv.bound_violations",
                                             "metrics/adv.overhead_per_event"]},
    "BENCH_serve.json":   {"perf_serve": ["metrics/serve.deltas",
                                          "metrics/serve.deltas_per_sec",
                                          "metrics/serve.p99_update_ns",
                                          "metrics/serve.warm",
                                          "metrics/serve.stream_batch_identical"]},
}
bad = []
for path, by_bench in required.items():
    try:
        recs = json.load(open(path))
    except FileNotFoundError:
        bad.append(f"{path}: not written")
        continue
    except json.JSONDecodeError as e:
        bad.append(f"{path}: does not parse as JSON ({e})")
        continue
    if not isinstance(recs, list) or not recs:
        bad.append(f"{path}: expected a non-empty JSON array of records")
        continue
    names = {}
    for rec in recs:
        if not isinstance(rec, dict) or "bench" not in rec:
            bad.append(f"{path}: record without a 'bench' field")
            continue
        names.setdefault(rec["bench"], rec)
    for bench, keys in by_bench.items():
        rec = names.get(bench)
        if rec is None:
            bad.append(f"{path}: no record for bench '{bench}'")
            continue
        for spec in keys:
            node = rec
            # '/' separates JSON nesting; metric names themselves contain
            # dots, so they are one path segment.
            for part in spec.split("/"):
                node = node.get(part) if isinstance(node, dict) else None
                if node is None:
                    break
            if node is None:
                bad.append(f"{path}: {bench} record missing '{spec}'")
if bad:
    print("bench_json.sh: EMITTED-JSON VALIDATION FAILED:", *bad,
          sep="\n  ", file=sys.stderr)
    sys.exit(1)
print("all emitted BENCH_*.json records parse and carry their gated keys")
PY
