#!/usr/bin/env bash
# Run the perf benchmarks with --json and collect the records into one
# machine-readable file at the repo root: BENCH_obs.json. Then run the
# census benches at MRT_THREADS=1 and MRT_THREADS=$(nproc), fail loudly if
# their stdout tables differ (the mrt::par determinism contract), and merge
# the timed records into BENCH_par.json.
#
# Usage: scripts/bench_json.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="BENCH_obs.json"

if [ ! -d "$BUILD/bench" ]; then
  echo "bench_json.sh: no $BUILD/bench — build first (cmake -B $BUILD && cmake --build $BUILD -j)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

records=()
for b in perf_routing perf_inference; do
  bin="$BUILD/bench/$b"
  if [ -x "$bin" ]; then
    echo "== $b =="
    "$bin" --json "$tmpdir/$b.json"
    records+=("$tmpdir/$b.json")
  else
    echo "bench_json.sh: skipping $b (not built)" >&2
  fi
done

if [ "${#records[@]}" -eq 0 ]; then
  echo "bench_json.sh: no benchmarks ran" >&2
  exit 1
fi

# Merge the per-bench records into a single JSON array.
{
  printf '['
  first=1
  for r in "${records[@]}"; do
    [ "$first" -eq 1 ] || printf ','
    first=0
    cat "$r"
  done
  printf ']\n'
} > "$OUT"
echo "wrote $OUT (${#records[@]} records)"

# --- Parallel determinism check + BENCH_par.json -------------------------
PAR_OUT="BENCH_par.json"
NPROC="$(nproc)"
par_records=()
for b in fig2_global_exact fig3_local_exact; do
  bin="$BUILD/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "bench_json.sh: skipping $b (not built)" >&2
    continue
  fi
  echo "== $b (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$bin" --json "$tmpdir/$b.t1.json" > "$tmpdir/$b.t1.out"
  MRT_THREADS="$NPROC" "$bin" --json "$tmpdir/$b.tn.json" > "$tmpdir/$b.tn.out"
  if ! diff -u "$tmpdir/$b.t1.out" "$tmpdir/$b.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — $b output depends on MRT_THREADS" >&2
    exit 1
  fi
  echo "   tables bit-identical at 1 and $NPROC threads"
  par_records+=("$tmpdir/$b.t1.json" "$tmpdir/$b.tn.json")
done

if [ "${#par_records[@]}" -gt 0 ]; then
  {
    printf '['
    first=1
    for r in "${par_records[@]}"; do
      [ "$first" -eq 1 ] || printf ','
      first=0
      cat "$r"
    done
    printf ']\n'
  } > "$PAR_OUT"
  echo "wrote $PAR_OUT (${#par_records[@]} records)"
fi

# --- Chaos campaign determinism check + BENCH_chaos.json -----------------
# The verdict table (stdout) must be byte-identical at any MRT_THREADS —
# the mrt::chaos campaign fans runs out through mrt::par under the same
# determinism contract as the census benches above.
CHAOS_OUT="BENCH_chaos.json"
bin="$BUILD/bench/chaos_campaign"
if [ -x "$bin" ]; then
  echo "== chaos_campaign (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$bin" --json "$tmpdir/chaos.t1.json" > "$tmpdir/chaos.t1.out"
  MRT_THREADS="$NPROC" "$bin" --json "$tmpdir/chaos.tn.json" \
    > "$tmpdir/chaos.tn.out"
  if ! diff -u "$tmpdir/chaos.t1.out" "$tmpdir/chaos.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — chaos verdict table depends on MRT_THREADS" >&2
    exit 1
  fi
  echo "   verdict tables bit-identical at 1 and $NPROC threads"
  printf '[' > "$CHAOS_OUT"
  cat "$tmpdir/chaos.t1.json" >> "$CHAOS_OUT"
  printf ',' >> "$CHAOS_OUT"
  cat "$tmpdir/chaos.tn.json" >> "$CHAOS_OUT"
  printf ']\n' >> "$CHAOS_OUT"
  echo "wrote $CHAOS_OUT (2 records)"
else
  echo "bench_json.sh: skipping chaos_campaign (not built)" >&2
fi

# --- Compiled-kernel gates + BENCH_compile.json --------------------------
# Three gates on mrt::compile:
#   1. speedup: perf_compile must show ≥2× on deep-lex (depth ≥ 3)
#      dijkstra/bellman and zero fallbacks for the paper algebras;
#   2. equivalence: the chaos verdict table must be byte-identical with
#      MRT_COMPILE=0 (boxed) and default (compiled), and the compiled
#      campaign must be ≥1.5× faster by wall clock;
#   3. determinism: the compiled campaign table must be byte-identical at
#      MRT_THREADS=1 and $(nproc).
COMPILE_OUT="BENCH_compile.json"
pc="$BUILD/bench/perf_compile"
cc="$BUILD/bench/chaos_campaign"
if [ -x "$pc" ] && [ -x "$cc" ]; then
  echo "== perf_compile =="
  "$pc" --json "$tmpdir/compile.json"

  echo "== chaos_campaign (MRT_COMPILE=0 vs compiled) =="
  MRT_COMPILE=0 "$cc" --json "$tmpdir/chaos.boxed.json" \
    > "$tmpdir/chaos.boxed.out"
  "$cc" --json "$tmpdir/chaos.compiled.json" > "$tmpdir/chaos.compiled.out"
  if ! diff -u "$tmpdir/chaos.boxed.out" "$tmpdir/chaos.compiled.out"; then
    echo "bench_json.sh: EQUIVALENCE VIOLATION — chaos verdicts differ between boxed and compiled" >&2
    exit 1
  fi
  echo "   verdict tables bit-identical boxed vs compiled"

  echo "== chaos_campaign compiled (MRT_THREADS=1 vs $NPROC) =="
  MRT_THREADS=1 "$cc" --json "$tmpdir/chaos.c.t1.json" \
    > "$tmpdir/chaos.c.t1.out"
  MRT_THREADS="$NPROC" "$cc" --json "$tmpdir/chaos.c.tn.json" \
    > "$tmpdir/chaos.c.tn.out"
  if ! diff -u "$tmpdir/chaos.c.t1.out" "$tmpdir/chaos.c.tn.out"; then
    echo "bench_json.sh: DETERMINISM VIOLATION — compiled chaos verdicts depend on MRT_THREADS" >&2
    exit 1
  fi
  echo "   compiled verdict tables bit-identical at 1 and $NPROC threads"

  python3 - "$tmpdir/compile.json" "$tmpdir/chaos.boxed.json" \
    "$tmpdir/chaos.compiled.json" <<'PY'
import json, sys
compile_rec = json.load(open(sys.argv[1]))
boxed = json.load(open(sys.argv[2]))
flat = json.load(open(sys.argv[3]))
m = compile_rec["metrics"]
bad = []
for k in ("speedup.dijkstra.depth3", "speedup.dijkstra.depth4",
          "speedup.bellman.depth3", "speedup.bellman.depth4"):
    if m.get(k, 0.0) < 2.0:
        bad.append(f"{k} = {m.get(k, 0.0):.2f} < 2.0")
if m.get("fallbacks", 1.0) != 0.0:
    bad.append(f"compile.fallbacks = {m.get('fallbacks')} != 0")
ratio = boxed["wall_s"] / flat["wall_s"]
if ratio < 1.5:
    bad.append(f"chaos wall clock boxed/compiled = {ratio:.2f} < 1.5")
if bad:
    print("bench_json.sh: COMPILE GATE FAILED:", *bad, sep="\n  ",
          file=sys.stderr)
    sys.exit(1)
print(f"   gates passed: deep-lex >=2x, fallbacks 0, "
      f"chaos {ratio:.2f}x compiled")
json.dump([compile_rec, boxed, flat], open("BENCH_compile.json", "w"))
print()
PY
  echo "wrote $COMPILE_OUT (3 records)"
else
  echo "bench_json.sh: skipping compile gates (perf_compile/chaos_campaign not built)" >&2
fi
