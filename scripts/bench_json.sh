#!/usr/bin/env bash
# Run the perf benchmarks with --json and collect the records into one
# machine-readable file at the repo root: BENCH_obs.json.
#
# Usage: scripts/bench_json.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="BENCH_obs.json"

if [ ! -d "$BUILD/bench" ]; then
  echo "bench_json.sh: no $BUILD/bench — build first (cmake -B $BUILD && cmake --build $BUILD -j)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

records=()
for b in perf_routing perf_inference; do
  bin="$BUILD/bench/$b"
  if [ -x "$bin" ]; then
    echo "== $b =="
    "$bin" --json "$tmpdir/$b.json"
    records+=("$tmpdir/$b.json")
  else
    echo "bench_json.sh: skipping $b (not built)" >&2
  fi
done

if [ "${#records[@]}" -eq 0 ]; then
  echo "bench_json.sh: no benchmarks ran" >&2
  exit 1
fi

# Merge the per-bench records into a single JSON array.
{
  printf '['
  first=1
  for r in "${records[@]}"; do
    [ "$first" -eq 1 ] || printf ','
    first=0
    cat "$r"
  done
  printf ']\n'
} > "$OUT"
echo "wrote $OUT (${#records[@]} records)"
