#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j "$(nproc)"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
for ex in build/examples/*; do
  [ -f "$ex" ] && [ -x "$ex" ] && "$ex" > /dev/null && echo "example ok: $ex"
done
