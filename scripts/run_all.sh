#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
set -euo pipefail
cd "$(dirname "$0")/.."
if [ -f build/CMakeCache.txt ]; then
  cmake -B build  # already configured: keep whatever generator the cache has
elif command -v ninja > /dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build  # no ninja: fall back to the platform default generator
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
for ex in build/examples/*; do
  [ -f "$ex" ] && [ -x "$ex" ] && "$ex" > /dev/null && echo "example ok: $ex"
done
