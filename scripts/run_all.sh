#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
#
# Usage: scripts/run_all.sh [tsan|asan] [--preset <name>] [--labels <regex>]
#   tsan — build with -DMRT_SANITIZE=thread into build-tsan and run the
#          concurrency-sensitive suites (mrt::par + simulator) under
#          ThreadSanitizer with MRT_THREADS=4, then exit.
#   asan — build with -DMRT_SANITIZE=address,undefined into build-asan and
#          run the chaos campaigns plus the simulator suites under
#          AddressSanitizer + UBSan, then exit.
#   --preset dyn — tsan build focused on the incremental solvers: runs the
#          mrt::dyn seam suites plus the differential property suite under
#          ThreadSanitizer with MRT_THREADS=4, then exit.
#   --preset obs — tsan build focused on the flight recorder: runs the
#          journal, provenance, and metrics suites with MRT_JOURNAL=1 under
#          ThreadSanitizer with MRT_THREADS=4 (per-thread rings drained
#          mid-run is exactly the race surface), then exit.
#   --preset rib — tsan build focused on the batched routing tables: runs
#          the mrt::rib differential and unit suites (plus the dyn seam
#          they build on) under ThreadSanitizer with MRT_THREADS=4 and
#          MRT_SIMD=1 — destination blocks stolen in LPT order writing
#          shared stats, with the vectorized vertical relax inside each
#          block, is the race surface — then exit.
#   --preset adv — tsan build focused on the adversarial schedulers: runs
#          the mrt::adv certificate/shrinker suites plus the simulator core
#          under ThreadSanitizer with MRT_THREADS=4 (the triple property
#          suite fans out over mrt::par workers while adversarial schedulers
#          mutate per-arc state — exactly the race surface), then exit.
#   --preset serve — tsan build focused on the routing daemon: runs the
#          delta-stream + daemon suites under ThreadSanitizer with
#          MRT_THREADS=4 — the drain loop feeds warm RibSolver updates whose
#          destination blocks are stolen across workers while the daemon
#          diffs shadow state between them — then exit.
#   --labels <regex> — only run ctest tests whose label matches (unit,
#          property, chaos, adv, perf, serve); see tests/CMakeLists.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

LABELS=""
PRESET=""
ARGS=()
while [ "$#" -gt 0 ]; do
  case "$1" in
    --labels)
      LABELS="${2:?run_all.sh: --labels needs a regex}"
      shift 2
      ;;
    --preset)
      PRESET="${2:?run_all.sh: --preset needs a name}"
      shift 2
      ;;
    *)
      ARGS+=("$1")
      shift
      ;;
  esac
done

if [ -n "$PRESET" ]; then
  case "$PRESET" in
    dyn)
      # Incremental-solver focus: the dyn seam mutates routing state in place
      # across updates, and the chaos oracles clone solvers across worker
      # threads, so the whole surface runs under ThreadSanitizer.
      cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
      cmake --build build-tsan -j "$(nproc)" \
        --target mrt_tests mrt_property_tests
      MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
        -R 'TopologyDelta|DynNet|SolverSeam|SimDeltaBridge|CompiledNetRelabel|DynDifferential'
      echo "dyn preset passed"
      exit 0
      ;;
    obs)
      # Flight-recorder focus: producers append to per-thread rings while
      # the main thread drains, and the concurrent-gauge/journal tests race
      # on purpose — the whole observability surface runs under
      # ThreadSanitizer with the journal forced on.
      cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
      cmake --build build-tsan -j "$(nproc)" \
        --target mrt_tests mrt_property_tests
      MRT_JOURNAL=1 MRT_THREADS=4 ctest --test-dir build-tsan \
        --output-on-failure \
        -R 'Journal|Provenance|ObsMetrics|ObsQuantile|ObsJson|ObsTrace'
      echo "obs preset passed"
      exit 0
      ;;
    rib)
      # Batched routing-table focus: destination blocks are stolen in
      # LPT order through par::parallel_steal and write per-column stats
      # into shared arrays, so the whole batched surface (and the dyn
      # seam under it) runs under ThreadSanitizer with more threads than
      # blocks. MRT_SIMD=1 keeps the vectorized vertical relax (and its
      # slot-major reshapes) on the race surface alongside the stealing
      # scheduler.
      cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
      cmake --build build-tsan -j "$(nproc)" \
        --target mrt_tests mrt_property_tests
      MRT_SIMD=1 MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
        -R 'Rib|DynDifferential|SolverSeam'
      echo "rib preset passed"
      exit 0
      ;;
    adv)
      # Adversarial-scheduler focus: the triple property suite runs
      # certificate sweeps across mrt::par workers while each worker's
      # scheduler mutates per-arc reorder/starvation state, and the campaign
      # schedule axis shares verdict accumulators — run the adv tier and the
      # simulator core under ThreadSanitizer.
      cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
      cmake --build build-tsan -j "$(nproc)" \
        --target mrt_tests mrt_adv_tests
      MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure -L adv
      MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
        -R 'Sim|PathVector|EventQueue'
      echo "adv preset passed"
      exit 0
      ;;
    serve)
      # Routing-daemon focus: drain() pushes warm updates through the batched
      # RibSolver (block stealing across workers) while the daemon reads the
      # materialized columns back for the route-change diff, so the whole
      # stream→daemon path runs under ThreadSanitizer.
      cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
      cmake --build build-tsan -j "$(nproc)" \
        --target mrt_tests mrt_serve_tests
      MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure -L serve
      echo "serve preset passed"
      exit 0
      ;;
    *)
      echo "run_all.sh: unknown preset '$PRESET' (known: dyn, obs, rib, adv, serve)" >&2
      exit 2
      ;;
  esac
fi

if [ "${ARGS[0]:-}" = "tsan" ]; then
  cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc)" --target mrt_tests mrt_perf_tests
  MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
    -R 'Par|Sim|PathVector|EventQueue|Compile'
  echo "tsan preset passed"
  exit 0
fi

if [ "${ARGS[0]:-}" = "asan" ]; then
  cmake -B build-asan -DMRT_SANITIZE=address,undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j "$(nproc)" --target mrt_tests mrt_chaos_tests
  # The chaos tier exercises the fault injectors and oracles end to end;
  # the simulator suites cover the event queue and protocol core.
  ctest --test-dir build-asan --output-on-failure -L chaos
  ctest --test-dir build-asan --output-on-failure \
    -R 'Sim|PathVector|EventQueue'
  echo "asan preset passed"
  exit 0
fi

if [ -f build/CMakeCache.txt ]; then
  cmake -B build  # already configured: keep whatever generator the cache has
elif command -v ninja > /dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build  # no ninja: fall back to the platform default generator
fi
cmake --build build -j "$(nproc)"
if [ -n "$LABELS" ]; then
  ctest --test-dir build --output-on-failure -j "$(nproc)" -L "$LABELS"
  exit 0
fi
ctest --test-dir build --output-on-failure -j "$(nproc)"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
for ex in build/examples/*; do
  [ -f "$ex" ] && [ -x "$ex" ] && "$ex" > /dev/null && echo "example ok: $ex"
done
