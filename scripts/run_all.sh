#!/usr/bin/env bash
# Build, test, and regenerate every experiment.
#
# Usage: scripts/run_all.sh [tsan]
#   tsan — build with -DMRT_SANITIZE=thread into build-tsan and run the
#          concurrency-sensitive suites (mrt::par + simulator) under
#          ThreadSanitizer with MRT_THREADS=4, then exit.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "tsan" ]; then
  cmake -B build-tsan -DMRT_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j "$(nproc)" --target mrt_tests
  MRT_THREADS=4 ctest --test-dir build-tsan --output-on-failure \
    -R 'Par|Sim|PathVector|EventQueue'
  echo "tsan preset passed"
  exit 0
fi

if [ -f build/CMakeCache.txt ]; then
  cmake -B build  # already configured: keep whatever generator the cache has
elif command -v ninja > /dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build  # no ninja: fall back to the platform default generator
fi
cmake --build build -j "$(nproc)"
ctest --test-dir build --output-on-failure -j "$(nproc)"
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done
for ex in build/examples/*; do
  [ -f "$ex" ] && [ -x "$ex" ] && "$ex" > /dev/null && echo "example ok: $ex"
done
