// Route provenance from the convergence flight recorder: solves GOOD GADGET
// (the 3-node gadget under the increasing hop-count algebra), knocks out one
// node's witness arc, and then *explains* every node's route — which arc
// carries it, which delta batch settled it, and at which journal event — by
// querying the mrt::obs journal through the provenance index. Each report is
// cross-checked against the solver's own witness forest before printing, so
// a nonzero exit means the journal and the solver disagree.
//
//   explain_route [node]     explain a single node instead of all of them
//
// The tail of the output is the metrics registry in OpenMetrics text format
// (including the p50/p90/p99 latency quantiles the journal PR added).
#include <cstdlib>
#include <iostream>

#include "mrt/obs/obs.hpp"
#include "mrt/obs/provenance.hpp"
#include "mrt/sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mrt;
  obs::set_enabled(true);
  obs::set_journal_enabled(true);
  obs::journal().reset();  // start from a clean flight-recorder window

  Scenario sc = good_gadget_hops();
  std::unique_ptr<Solver> solver =
      dyn::make_solver(dyn::EngineKind::Dijkstra, sc.alg);
  solver->solve(sc.net, sc.dest, sc.origin);

  // Knock out the first non-destination node's witness arc: the update is
  // what gives the re-settled routes a delta batch to be explained by.
  int victim_arc = -1;
  for (int v = 0; v < sc.net.num_nodes() && victim_arc < 0; ++v) {
    if (v != sc.dest) victim_arc = solver->routing().next_arc[v];
  }
  if (victim_arc >= 0) {
    dyn::TopologyDelta delta;
    delta.arc_down(victim_arc);
    solver->update(delta);
    std::cout << "applied delta: arc " << victim_arc << " down\n\n";
  }

  const obs::ProvenanceIndex idx(obs::journal().snapshot());

  int first = 0;
  int last = sc.net.num_nodes() - 1;
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v < 0 || v >= sc.net.num_nodes()) {
      std::cerr << "node out of range: " << argv[1] << "\n";
      return 1;
    }
    first = last = v;
  }

  bool ok = true;
  for (int v = first; v <= last; ++v) {
    const obs::ExplainReport rep = obs::explain_route(*solver, v, idx);
    std::cout << rep.to_string() << "\n";
    // Cross-check the report against the solver's own witness forest.
    const Routing& r = solver->routing();
    if (rep.has_route != r.has_route(v) || rep.loop) ok = false;
    if (rep.has_route) {
      if (rep.hops.front().node != v || rep.hops.back().node != sc.dest) {
        ok = false;
      }
      for (const obs::ExplainHop& h : rep.hops) {
        if (h.arc != r.next_arc[static_cast<std::size_t>(h.node)]) ok = false;
        const obs::JournalRecord* a =
            idx.last_attach(solver->journal_stream(), h.node);
        if (a == nullptr || a->arc != h.arc) ok = false;
      }
    }
  }
  if (!ok) {
    std::cerr << "provenance mismatch against the solver's witness forest\n";
    return 1;
  }

  std::cout << "journal: " << obs::journal().recorded() << " events recorded, "
            << obs::journal().dropped() << " dropped\n\n";
  obs::registry().write_openmetrics(std::cout);
  return 0;
}
