// Records a Chrome trace-event file for one BAD-GADGET run — the canonical
// divergent path-vector instance (Griffin–Shepherd–Wilfong; not ND, so
// Theorem 5 permits endless oscillation). Open the output in
// chrome://tracing or
// https://ui.perfetto.dev:
//   - "sim-time" process: advert/withdraw flights per arc, selection flips
//     per node, link events, and the queue-depth counter track;
//   - "wall-clock" process: reselect/advertise compute spans per node.
#include <iostream>
#include <string>

#include "mrt/obs/obs.hpp"
#include "mrt/sim/scenario.hpp"

int main(int argc, char** argv) {
  using namespace mrt;
  // Default next to the executable, not the caller's cwd — running from the
  // repo root must not litter the checkout.
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = argv[0];
    const std::size_t slash = path.find_last_of('/');
    path = (slash == std::string::npos ? std::string()
                                       : path.substr(0, slash + 1)) +
           "trace_convergence.json";
  }

  obs::set_enabled(true);
  obs::TraceSession session;
  session.install();

  Scenario sc = bad_gadget();
  for (int v = 0; v < sc.net.num_nodes(); ++v) {
    session.name_thread(obs::TraceSession::kSimPid, v,
                        "node " + std::to_string(v));
    session.name_thread(obs::TraceSession::kWallPid, v,
                        "node " + std::to_string(v));
  }

  SimOptions opts;
  opts.seed = 7;
  opts.max_events = 2000;  // enough oscillation to see the cycle structure
  opts.drop_top_routes = true;
  PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
  const SimResult res = sim.run();
  session.uninstall();

  std::cout << "BAD GADGET run: " << (res.converged ? "converged" : "diverged")
            << " after " << res.events << " deliveries ("
            << res.stats.messages_sent << " sent, "
            << res.stats.withdrawals_sent << " withdrawals, "
            << res.stats.selection_changes << " selection changes, queue "
            << "high-water " << res.stats.queue_high_water << ")\n";

  if (!session.write_chrome_json_file(path)) {
    std::cerr << "cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << session.size() << " trace events to " << path
            << "\nload it in chrome://tracing or https://ui.perfetto.dev\n";
  return 0;
}
