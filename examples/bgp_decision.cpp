// A BGP-like decision ladder assembled from the metalanguage operators:
//
//     bgp = lex( gao_rexford_class,   // economics: customer > peer > provider
//                as_hops,             // then shortest AS path
//                igp_cost )           // then hot-potato IGP distance
//
// The engine derives: nondecreasing (stable protocol states exist and the
// hierarchy delivers them) but not increasing, and not monotone — i.e. this
// ladder is a *local-optima* protocol, exactly BGP's nature. We then run it
// on a valley-free internet and inspect the chosen routes.
#include <cstdio>
#include <iostream>

#include "mrt/core/bases.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/report.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/scenario.hpp"

int main() {
  using namespace mrt;

  const OrderTransform gr = gao_rexford_algebra();
  const OrderTransform hops = ot_hop_count();
  const OrderTransform igp = ot_shortest_path(9);
  const OrderTransform bgp = lex(lex(gr, hops), igp);

  // What the checker can add to the derivation on this composite:
  Checker chk;
  OrderTransform annotated = bgp;
  chk.refine(annotated, annotated.props);
  std::cout << describe(annotated) << "\n";

  // Build a valley-free topology and dress each Gao-Rexford arc with
  // (relationship, +1 AS hop, random IGP cost).
  Rng rng(0xB69);
  Scenario base = gao_rexford_hierarchy(rng, 10, 5);
  ValueVec labels;
  for (int id = 0; id < base.net.graph().num_arcs(); ++id) {
    labels.push_back(Value::pair(
        Value::pair(base.net.label(id), Value::integer(1)),
        Value::integer(rng.range(1, 9))));
  }
  LabeledGraph net(base.net.graph(), std::move(labels));
  const Value origin = Value::pair(
      Value::pair(Value::integer(0), Value::integer(0)), Value::integer(0));

  SimOptions opts;
  opts.seed = 17;
  opts.drop_top_routes = true;
  PathVectorSim sim(bgp, net, 0, origin, opts);
  const SimResult res = sim.run();

  const char* kClass[] = {"customer", "peer", "provider", "invalid"};
  std::printf("converged=%s, stable=%s, messages=%ld\n\n",
              res.converged ? "yes" : "no",
              is_locally_optimal(bgp, net, 0, origin, res.routing, true)
                  ? "yes"
                  : "NO",
              res.events);
  std::printf("%-5s %-10s %-9s %-9s\n", "AS", "class", "AS hops", "IGP cost");
  for (int v = 1; v < net.num_nodes(); ++v) {
    if (!res.routing.has_route(v)) {
      std::printf("%-5d (no route)\n", v);
      continue;
    }
    const Value& w = *res.routing.weight[(std::size_t)v];
    std::printf("%-5d %-10s %-9s %-9s\n", v,
                kClass[w.first().first().as_int()],
                w.first().second().to_string().c_str(),
                w.second().to_string().c_str());
  }
  std::cout << "\nLower tiers reach the destination AS through their"
            << "\nproviders; economics dominates path length, path length"
            << "\ndominates IGP cost — BGP's ladder, derived not hand-proved.\n";
  return 0;
}
