// The routing daemon end to end: generate a deterministic replay log of
// topology deltas for a Gao–Rexford hierarchy, round-trip it through the
// framed wire format on disk, then drain it into a warm serve::Daemon and
// verify the result three ways:
//
//   stream   — the daemon's table after draining the file, delta by delta
//   batch    — a fresh RibSolver applying all ops as one TopologyDelta
//   cold     — the same, with dyn disabled (full re-solve of the end state)
//
// All three must agree byte-for-byte on every destination column — the
// stream≡batch≡cold contract from docs/SERVE.md, demonstrated on the same
// path a production deployment would run (file → FileSource → drain).
//
// Usage: mrt_serve [deltas] [replay-path]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "mrt/dyn/solver.hpp"
#include "mrt/rib/rib.hpp"
#include "mrt/serve/serve.hpp"
#include "mrt/sim/scenario.hpp"
#include "mrt/stream/stream.hpp"
#include "mrt/stream/wire.hpp"
#include "mrt/support/rng.hpp"

int main(int argc, char** argv) {
  using namespace mrt;
  const int n_deltas = argc > 1 ? std::atoi(argv[1]) : 400;
  // /tmp, not the caller's cwd — running from the repo root must not litter
  // the checkout.
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/mrt_serve_replay.bin";

  Rng rng(2026);
  const Scenario sc = gao_rexford_hierarchy(rng, 64, 48);
  const int arcs = sc.net.graph().num_arcs();
  std::vector<int> dests;
  for (int v = 0; v < sc.net.num_nodes(); v += 4) dests.push_back(v);

  // A deterministic churn log: mostly single-arc flaps (each down eventually
  // paired with an up), an occasional node crash/restart.
  std::vector<dyn::TopologyDelta> log;
  std::vector<int> downed;
  for (int i = 0; i < n_deltas; ++i) {
    dyn::TopologyDelta d;
    const std::uint64_t roll = rng.below(10);
    if (roll < 4 || downed.empty()) {
      const int a = static_cast<int>(rng.below(static_cast<std::uint64_t>(arcs)));
      d.arc_down(a);
      downed.push_back(a);
    } else if (roll < 8) {
      const std::size_t j = static_cast<std::size_t>(rng.below(downed.size()));
      d.arc_up(downed[j]);
      downed.erase(downed.begin() + static_cast<std::ptrdiff_t>(j));
    } else if (roll == 8) {
      d.node_down(static_cast<int>(
          1 + rng.below(static_cast<std::uint64_t>(sc.net.num_nodes() - 1))));
    } else {
      d.node_up(static_cast<int>(
          1 + rng.below(static_cast<std::uint64_t>(sc.net.num_nodes() - 1))));
    }
    log.push_back(std::move(d));
  }

  // Wire round trip: the bytes on disk must decode to the exact log and
  // re-encode to the exact bytes.
  if (!stream::write_delta_file(path, log)) {
    std::cerr << "cannot write replay log " << path << "\n";
    return 1;
  }
  const auto reread = stream::read_delta_file(path);
  if (!reread.ok()) {
    std::cerr << "replay log rejected: " << reread.error().to_string() << "\n";
    return 1;
  }
  const std::vector<std::uint8_t> original = stream::encode_stream(log);
  if (stream::encode_stream(*reread) != original) {
    std::cerr << "wire round-trip is not byte-identical\n";
    return 1;
  }

  // Drain the file into a warm daemon, counting route-change events.
  serve::Daemon daemon(sc.alg);
  daemon.start(sc.net, dests, sc.origin);
  stream::FileSource src(path);
  std::size_t events = 0;
  const std::size_t batches =
      daemon.drain(src, [&events](const serve::RouteChange&) { ++events; });
  if (!src.error().empty()) {
    std::cerr << "drain failed: " << src.error() << "\n";
    return 1;
  }

  // Three-way verification against batch and cold references.
  dyn::TopologyDelta all;
  for (const dyn::TopologyDelta& d : log) {
    all.ops.insert(all.ops.end(), d.ops.begin(), d.ops.end());
  }
  rib::RibSolver batch(sc.alg);
  batch.solve(sc.net, dests, sc.origin);
  batch.update(all);

  rib::RibSolver cold(sc.alg);
  cold.solve(sc.net, dests, sc.origin);
  const bool dyn_was = dyn::enabled();
  dyn::set_enabled(false);
  cold.update(all);
  dyn::set_enabled(dyn_was);

  std::size_t mismatches = 0;
  for (int c = 0; c < batch.num_columns(); ++c) {
    const Routing& s = daemon.rib().routing(c);
    const Routing& b = batch.routing(c);
    const Routing& f = cold.routing(c);
    for (int v = 0; v < sc.net.num_nodes(); ++v) {
      const std::size_t vi = static_cast<std::size_t>(v);
      const bool sb = s.weight[vi] == b.weight[vi] &&
                      s.next_arc[vi] == b.next_arc[vi];
      const bool sf = s.weight[vi] == f.weight[vi] &&
                      s.next_arc[vi] == f.next_arc[vi];
      if (!sb || !sf) ++mismatches;
    }
  }

  const serve::ServeStats& st = daemon.stats();
  std::cout << "mrt_serve: " << sc.net.num_nodes() << " nodes, " << arcs
            << " arcs, " << dests.size() << " destination columns\n"
            << "  replay log   " << batches << " delta batches ("
            << original.size() << " bytes on the wire), round-trip "
            << "byte-identical\n"
            << "  daemon drain " << st.deltas_consumed << " deltas, "
            << st.warm_updates << " warm / " << st.cold_updates << " cold, "
            << st.route_changes << " route changes (" << st.withdrawals
            << " withdrawals, " << events << " events sunk)\n"
            << "  verification stream vs batch vs cold: "
            << (mismatches == 0 ? "byte-identical" :
                std::to_string(mismatches) + " MISMATCHED route entries")
            << "\n";

  std::remove(path.c_str());
  return mismatches == 0 ? 0 : 1;
}
