// A tour of the metarouting language (RML): algebra definitions, derived
// property reports, and checker refinement. Pass a file path to run your own
// program instead of the built-in tour.
#include <fstream>
#include <iostream>
#include <sstream>

#include "mrt/lang/interp.hpp"

namespace {

constexpr const char* kTour = R"RML(
// Base algebras carry hand-proved properties.
let sp  = shortest_path
let bw  = widest_path
show sp

// The lexicographic product derives its properties from the operands
// (Theorems 4 and 5) -- including *failures*, with reasons.
let bad = lex(bw, sp)
show bad

// The scoped product models BGP-like regions; Theorem 6 emerges from the
// exact rules: M(S (.) T) iff M(S) & M(T), no side condition.
let good = scoped(bw, sp)
show good

// OSPF-like areas keep the side condition (Theorem 7).
show delta(bw, sp)

// Finite algebras can be decided exhaustively: 'check' fills every unknown
// with a checker verdict or a concrete counterexample.
let g = gadget
check g

// Quadrant translations (section III).
show cayley(sp_os)
show no_l(sp_st)

// And run a routing computation: the derived properties are the proof
// component -- solve warns when they do not license the algorithm.
solve lex(sp, bw) on random(7, 4, 11) to 0 from pair(0, inf)
solve bad on line(4) to 0 from pair(inf, 0)
)RML";

}  // namespace

int main(int argc, char** argv) {
  std::string source = kTour;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    source = buf.str();
  }

  mrt::lang::Interp interp;
  auto out = interp.run(source);
  if (!out.ok()) {
    std::cerr << "error: " << out.error().to_string() << "\n";
    return 1;
  }
  std::cout << *out;
  return 0;
}
