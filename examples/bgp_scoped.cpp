// BGP-like policy partitioning with the scoped product (paper section II/V).
//
// The network is partitioned into regions (autonomous systems). Inter-region
// arcs transform the global metric and originate a fresh intra-region
// metric; intra-region arcs copy the global component and evolve the local
// one. We run the asynchronous path-vector protocol, verify the stable state
// is a local optimum, then fail a border link and watch reconvergence.
#include <cstdio>
#include <iostream>

#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/report.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/path_vector.hpp"

int main() {
  using namespace mrt;

  // Global metric: inter-region hop count (increasing). Local: link delay.
  const OrderTransform as_hops = ot_hop_count();
  const OrderTransform igp = ot_shortest_path(9);
  const OrderTransform alg = scoped(as_hops, igp);
  std::cout << describe(alg) << "\n";

  // Two-level topology: 4 regions x 5 routers.
  Rng rng(2026);
  RegionTopology topo = regions_topology(rng, 4, 5, 3);
  const int n = topo.g.num_nodes();

  // Label arcs per their role: inter-region arcs advance the AS-hop metric
  // and originate a fresh IGP distance; intra-region arcs accumulate delay.
  ValueVec labels;
  for (int id = 0; id < topo.g.num_arcs(); ++id) {
    if (topo.inter_region(id)) {
      const Value f = Value::integer(1);                       // +1 AS hop
      const Value c = Value::integer(rng.range(1, 5));         // fresh IGP
      labels.push_back(Value::tagged(1, Value::pair(f, c)));
    } else {
      const Value g = Value::integer(rng.range(1, 4));         // +delay
      labels.push_back(Value::tagged(2, Value::pair(Value::unit(), g)));
    }
  }
  LabeledGraph net(topo.g, std::move(labels));

  const int dest = 0;
  const Value origin = Value::pair(Value::integer(0), Value::integer(0));

  SimOptions opts;
  opts.seed = 99;
  PathVectorSim sim(alg, net, dest, origin, opts);
  const SimResult res = sim.run();

  std::printf("converged=%s after %ld messages (t=%.1f)\n",
              res.converged ? "yes" : "NO", res.events, res.finish_time);
  std::printf("stable state locally optimal: %s\n",
              is_locally_optimal(alg, net, dest, origin, res.routing) ? "yes"
                                                                      : "NO");

  std::printf("\n%-7s %-7s %-22s\n", "node", "region", "(AS hops, IGP cost)");
  for (int v = 0; v < n; v += 3) {  // a sample of rows
    std::printf("%-7d %-7d %-22s\n", v, topo.region[(std::size_t)v],
                res.routing.has_route(v)
                    ? res.routing.weight[(std::size_t)v]->to_string().c_str()
                    : "(no route)");
  }

  // Fail one inter-region arc and reconverge.
  int victim = -1;
  for (int id = 0; id < net.graph().num_arcs(); ++id) {
    if (topo.inter_region(id)) {
      victim = id;
      break;
    }
  }
  PathVectorSim sim2(alg, net, dest, origin, opts);
  sim2.schedule_link_down(10'000.0, victim);
  const SimResult res2 = sim2.run();
  std::printf("\nafter failing border arc %d -> %d: converged=%s, "
              "total flaps=%d\n",
              net.graph().arc(victim).src, net.graph().arc(victim).dst,
              res2.converged ? "yes" : "NO", [&] {
                int total = 0;
                for (int f : res2.flaps) total += f;
                return total;
              }());
  std::printf("still locally optimal: %s\n",
              is_locally_optimal(alg, net, dest, origin, res2.routing)
                  ? "yes"
                  : "NO");
  return 0;
}
