// Quickstart: define a routing algebra compositionally, read off its derived
// properties, and solve a small network with the generic algorithms.
//
// The algebra: routes carry (hop count, bandwidth) and are compared
// lexicographically — fewest hops first, ties broken by widest bottleneck.
// Theorem 4 derives monotonicity automatically (hop count is cancellative),
// so generalized Dijkstra is guaranteed to find global optima.
#include <cstdio>
#include <iostream>

#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/report.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/optimality.hpp"

int main() {
  using namespace mrt;

  // 1. Compose the algebra. Properties are inferred at construction.
  const OrderTransform hops = ot_hop_count();
  const OrderTransform bw = ot_widest_path(9);
  const OrderTransform alg = lex(hops, bw);

  std::cout << describe(alg) << "\n";
  if (alg.props.proved(Prop::M_L)) {
    std::cout << "=> monotone: Dijkstra will compute GLOBAL optima\n\n";
  }

  // 2. Build a small network. Every arc is one hop with a capacity.
  //    Topology: a ring of 6 nodes plus two chords; destination is node 0.
  Rng rng(7);
  Digraph g = ring(6);
  g.add_arc(2, 0);
  g.add_arc(0, 2);
  g.add_arc(4, 1);
  g.add_arc(1, 4);
  LabeledGraph net = label_randomly(alg, std::move(g), rng);

  // 3. Solve toward destination 0 (originating "0 hops, infinite capacity").
  const Value origin = Value::pair(Value::integer(0), Value::inf());
  const Routing r = dijkstra(alg, net, /*dest=*/0, origin);

  // 4. Print the route table and verify against exhaustive search.
  std::printf("%-6s %-18s %-12s %s\n", "node", "weight (hops, bw)", "next hop",
              "globally optimal?");
  for (int v = 1; v < net.num_nodes(); ++v) {
    const bool ok = is_globally_optimal(alg, net, v, 0, origin, *r.weight[v]);
    const int next = net.graph().arc(r.next_arc[v]).dst;
    std::printf("%-6d %-18s %-12d %s\n", v, r.weight[v]->to_string().c_str(),
                next, ok ? "yes" : "NO");
  }
  return 0;
}
