// OSPF-like areas with the Δ operator (paper sections II and V).
//
// Δ differs from the scoped product: inter-area arcs may transform BOTH
// components, so Theorem 7 says monotonicity needs the Thm 4 side condition
// N(S) ∨ C(T) again. With S = inter-area distance (cancellative: N holds)
// the composite is monotone and global optima are computable with Dijkstra.
#include <cstdio>
#include <iostream>

#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/report.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/optimality.hpp"

int main() {
  using namespace mrt;

  const OrderTransform backbone = ot_shortest_path(9);  // inter-area cost
  const OrderTransform area = ot_shortest_path(9);      // intra-area cost
  const OrderTransform alg = delta(backbone, area);
  std::cout << describe(alg) << "\n";
  std::cout << (alg.props.proved(Prop::M_L)
                    ? "=> monotone (N holds for the backbone metric): global "
                      "optima guaranteed\n\n"
                    : "=> NOT monotone\n\n");

  // Contrast: bandwidth as the backbone metric loses N, and Δ (unlike ⊙)
  // does not repair it.
  const OrderTransform bad = delta(ot_widest_path(9), area);
  std::cout << "with a bandwidth backbone instead: M = "
            << to_string(bad.props.value(Prop::M_L)) << " — "
            << bad.props.get(Prop::M_L).why << "\n\n";

  // Solve a 3-area network.
  Rng rng(11);
  RegionTopology topo = regions_topology(rng, 3, 4, 2);
  ValueVec labels;
  for (int id = 0; id < topo.g.num_arcs(); ++id) {
    if (topo.inter_region(id)) {
      labels.push_back(Value::tagged(
          1, Value::pair(Value::integer(rng.range(1, 5)),
                         Value::integer(rng.range(1, 5)))));
    } else {
      labels.push_back(Value::tagged(
          2, Value::pair(Value::unit(), Value::integer(rng.range(1, 5)))));
    }
  }
  LabeledGraph net(topo.g, std::move(labels));
  const Value origin = Value::pair(Value::integer(0), Value::integer(0));
  const Routing r = dijkstra(alg, net, 0, origin);

  int optimal = 0, total = 0;
  for (int v = 1; v < net.num_nodes(); ++v) {
    if (!r.has_route(v)) continue;
    ++total;
    optimal +=
        is_globally_optimal(alg, net, v, 0, origin, *r.weight[v]) ? 1 : 0;
  }
  std::printf("Dijkstra routes globally optimal at %d/%d nodes\n", optimal,
              total);

  std::printf("\n%-7s %-7s %-26s\n", "node", "area", "(backbone, intra) cost");
  for (int v = 1; v < net.num_nodes(); v += 2) {
    std::printf("%-7d %-7d %-26s\n", v, topo.region[(std::size_t)v],
                r.has_route(v) ? r.weight[(std::size_t)v]->to_string().c_str()
                               : "(no route)");
  }
  return 0;
}
