// The paper's running example, end to end.
//
// Sobrinho's observation:   M((ℕ,≤,+) ⃗× (ℕ,≥,min))   but
//                          ¬M((ℕ,≥,min) ⃗× (ℕ,≤,+)):
// selecting by bandwidth first and delay second is NOT monotone, so a
// Dijkstra-style computation can silently return suboptimal routes. The
// metarouting engine derives this *before* any packet flows — including the
// reason (N fails for bandwidth, C fails for delay) — and the scoped product
// repairs it (Theorem 6: M(S ⊙ T) ⟺ M(S) ∧ M(T)).
#include <iostream>

#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/report.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/optimality.hpp"

int main() {
  using namespace mrt;
  const OrderTransform bw = ot_widest_path(9);
  const OrderTransform sp = ot_shortest_path(9);

  std::cout << "=== delay before bandwidth: monotone ===\n"
            << summary_line(lex(sp, bw).props, StructureKind::OrderTransform)
            << "\n\n";

  const OrderTransform bad = lex(bw, sp);
  std::cout << "=== bandwidth before delay: NOT monotone ===\n"
            << describe(bad) << "\n";

  const OrderTransform good = scoped(bw, sp);
  std::cout << "=== scoped product bandwidth-over-delay: monotone again ===\n"
            << summary_line(good.props, StructureKind::OrderTransform)
            << "\n\n";

  // Demonstrate the operational consequence on a 3-node network:
  //   node 2 → 0: a wide-slow arc (bw 9, d 5) and a narrow-fast arc (bw 3, d 1)
  //   node 1 → 2: a very narrow arc (bw 2, d 1)
  Digraph g(3);
  ValueVec labels;
  auto arc = [&](int u, int v, std::int64_t b, std::int64_t d) {
    g.add_arc(u, v);
    labels.push_back(Value::pair(Value::integer(b), Value::integer(d)));
  };
  arc(2, 0, 9, 5);
  arc(2, 0, 3, 1);
  arc(1, 2, 2, 1);
  LabeledGraph net(std::move(g), std::move(labels));
  const Value origin = Value::pair(Value::inf(), Value::integer(0));

  const Routing r = dijkstra(bad, net, 0, origin);
  std::cout << "Dijkstra under bandwidth-first lex:\n"
            << "  node 2 selects " << r.weight[2]->to_string()
            << "  (correct: prefers the wide arc)\n"
            << "  node 1 selects " << r.weight[1]->to_string() << "\n";
  const ValueVec truth = global_min_set(bad, net, 1, 0, origin);
  std::cout << "  but the true optimum for node 1 is "
            << truth.front().to_string()
            << " — through node 2's *narrow-fast* arc, which node 2 itself\n"
            << "  rightly rejected. Monotonicity failed exactly as the "
               "N/C analysis predicts.\n";
  return 0;
}
