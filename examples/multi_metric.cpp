// Multi-metric routing three ways: the same (delay, bandwidth) measurements
// under three different composition operators, showing how the operator — not
// the metrics — decides what is computable:
//
//   lex(bw, sp)   total order, NOT monotone  → single-path, can be anomalous
//   scoped(bw,sp) total order, monotone      → single-path, globally optimal
//   prod(sp, bw)  partial order, monotone    → multipath Pareto frontiers
//
// plus k-best routes on the monotone lex nesting.
#include <cstdio>
#include <iostream>

#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/report.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/kbest.hpp"
#include "mrt/routing/minset.hpp"
#include "mrt/routing/optimality.hpp"

int main() {
  using namespace mrt;
  const OrderTransform sp = ot_shortest_path(6);
  const OrderTransform bw = ot_widest_path(6);

  const OrderTransform lex_alg = lex(sp, bw);
  const OrderTransform pareto = direct(sp, bw);

  std::printf("%-16s M=%s  total=%s\n", "lex(sp, bw):",
              to_string(lex_alg.props.value(Prop::M_L)).c_str(),
              to_string(lex_alg.props.value(Prop::Total)).c_str());
  std::printf("%-16s M=%s  total=%s  (Pareto multipath)\n\n", "prod(sp, bw):",
              to_string(pareto.props.value(Prop::M_L)).c_str(),
              to_string(pareto.props.value(Prop::Total)).c_str());

  // One topology, shared measurements.
  Rng rng(77);
  Digraph g = random_connected(rng, 9, 7);
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(Value::pair(Value::integer(rng.range(1, 6)),
                                 Value::integer(rng.range(1, 6))));
  }
  LabeledGraph net(std::move(g), std::move(labels));
  const Value origin = Value::pair(Value::integer(0), Value::inf());

  // Single best route per node (lex), with global-optimality verification.
  const Routing r = dijkstra(lex_alg, net, 0, origin);
  // Pareto frontier per node (prod).
  const MinSetResult ms = minset_bellman(pareto, net, 0, origin);
  // k best distinct lex weights per node.
  const KBestResult kb = kbest_bellman(lex_alg, net, 0, origin, 3);

  std::printf("%-5s %-14s %-6s %-34s %s\n", "node", "lex best", "opt?",
              "Pareto frontier (delay, bw)", "3-best lex weights");
  for (int v = 1; v < net.num_nodes(); ++v) {
    std::string frontier, kbest;
    for (const Value& w : ms.weights[(std::size_t)v]) {
      frontier += w.to_string() + " ";
    }
    for (const Value& w : kb.weights[(std::size_t)v]) {
      kbest += w.to_string() + " ";
    }
    std::printf("%-5d %-14s %-6s %-34s %s\n", v,
                r.weight[(std::size_t)v]->to_string().c_str(),
                is_globally_optimal(lex_alg, net, v, 0, origin,
                                    *r.weight[(std::size_t)v])
                    ? "yes"
                    : "NO",
                frontier.c_str(), kbest.c_str());
  }

  std::cout << "\nEvery lex-best weight appears on its node's Pareto frontier;"
            << "\nthe frontier also keeps the trade-off routes a single total"
            << "\norder must discard.\n";
  return 0;
}
