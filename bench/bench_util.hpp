// Shared plumbing for the experiment harnesses: each bench regenerates one
// of the paper's figures/tables as a measured census and prints it.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "mrt/core/checker.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/core/report.hpp"
#include "mrt/support/table.hpp"

namespace mrt::bench {

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Agreement tally between a derived rule and the oracle.
struct Census {
  long both_true = 0;
  long both_false = 0;
  long rule_true_oracle_false = 0;   // unsoundness (must stay 0)
  long rule_false_oracle_true = 0;   // incompleteness of a "false" claim
  long undecided = 0;                // rule returned Unknown

  void tally(Tri rule, Tri oracle) {
    if (rule == Tri::Unknown || oracle == Tri::Unknown) {
      ++undecided;
    } else if (rule == Tri::True && oracle == Tri::True) {
      ++both_true;
    } else if (rule == Tri::False && oracle == Tri::False) {
      ++both_false;
    } else if (rule == Tri::True) {
      ++rule_true_oracle_false;
    } else {
      ++rule_false_oracle_true;
    }
  }

  long total() const {
    return both_true + both_false + rule_true_oracle_false +
           rule_false_oracle_true + undecided;
  }

  std::vector<std::string> row(const std::string& label) const {
    return {label,
            std::to_string(total()),
            std::to_string(both_true),
            std::to_string(both_false),
            std::to_string(rule_true_oracle_false),
            std::to_string(rule_false_oracle_true),
            std::to_string(undecided)};
  }
};

inline Table census_table() {
  return Table({"rule", "samples", "agree:yes", "agree:no", "UNSOUND(yes/no)",
                "miss(no/yes)", "undecided"});
}

}  // namespace mrt::bench
