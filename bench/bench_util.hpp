// Shared plumbing for the experiment harnesses: each bench regenerates one
// of the paper's figures/tables as a measured census and prints it.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "mrt/core/bases.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"
#include "mrt/core/report.hpp"
#include "mrt/obs/obs.hpp"
#include "mrt/par/par.hpp"
#include "mrt/support/table.hpp"

namespace mrt::bench {

inline void banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

/// Algebra stacks of increasing lexicographic depth: shortest-path at the
/// front, alternating widest/shortest below. The shared deep-lex workload of
/// EXP-PERF and EXP-COMPILE, so their numbers stay directly comparable.
inline OrderTransform stacked(int depth) {
  OrderTransform alg = ot_shortest_path(6);
  for (int i = 1; i < depth; ++i) {
    alg = lex(alg, i % 2 == 0 ? ot_shortest_path(6) : ot_widest_path(6));
  }
  return alg;
}

/// The origin weight matching stacked(depth): 0 in every shortest component,
/// ∞ (unlimited capacity) in every widest component.
inline Value stacked_origin(int depth) {
  Value v = Value::integer(0);
  for (int i = 1; i < depth; ++i) {
    v = Value::pair(std::move(v),
                    i % 2 == 0 ? Value::integer(0) : Value::inf());
  }
  return v;
}

/// Extracts `--json <path>` or `--json=<path>` from argv (removing the
/// consumed arguments so downstream flag parsers — e.g. google-benchmark's —
/// never see them); falls back to the MRT_BENCH_JSON environment variable.
/// Returns "" when no output was requested.
inline std::string take_json_path(int& argc, char** argv) {
  std::string path;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (std::strcmp(argv[r], "--json") == 0 && r + 1 < argc) {
      path = argv[++r];
    } else if (std::strncmp(argv[r], "--json=", 7) == 0) {
      path = argv[r] + 7;
    } else {
      argv[w++] = argv[r];
    }
  }
  argc = w;
  argv[argc] = nullptr;
  if (path.empty()) {
    if (const char* env = std::getenv("MRT_BENCH_JSON")) path = env;
  }
  return path;
}

/// Writes one BENCH_*.json-compatible record on destruction: the bench name,
/// wall time of the whole run, any explicitly attached metrics, and a
/// snapshot of the obs registry (counters + gauges). Construct it first
/// thing in main(); when a JSON path is requested it turns observability on
/// so the counters actually populate.
class JsonReport {
 public:
  JsonReport(std::string name, int& argc, char** argv)
      : name_(std::move(name)),
        path_(take_json_path(argc, argv)),
        t0_(std::chrono::steady_clock::now()) {
    if (active()) obs::set_enabled(true);
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  bool active() const { return !path_.empty(); }

  /// Attaches an extra scalar to the record (e.g. a census total).
  void metric(const std::string& key, double v) { metrics_[key] = v; }

  ~JsonReport() {
    if (!active()) return;
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
            .count();
    std::ofstream out(path_);
    if (!out) {
      std::cerr << "bench: cannot write " << path_ << "\n";
      return;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("bench").value(name_);
    w.key("wall_s").value(wall_s);
    w.key("metrics").begin_object();
    for (const auto& [k, v] : metrics_) w.key(k).value(v);
    w.end_object();
    w.key("counters").begin_object();
    for (const auto& [k, v] : obs::registry().counters()) w.key(k).value(v);
    w.end_object();
    w.key("gauges").begin_object();
    for (const auto& [k, v] : obs::registry().gauges()) w.key(k).value(v);
    w.end_object();
    // Latency distributions (the journal PR's per-update()/per-run timers):
    // count/mean/max plus the log-2-bucket quantile estimates, so BENCH
    // trajectories track tails, not just totals.
    w.key("histograms").begin_object();
    for (const auto& [k, h] : obs::registry().histograms()) {
      w.key(k).begin_object();
      w.key("count").value(static_cast<std::uint64_t>(h->count()));
      w.key("mean").value(h->mean());
      w.key("max").value(static_cast<std::uint64_t>(h->max()));
      w.key("p50").value(h->quantile(0.50));
      w.key("p90").value(h->quantile(0.90));
      w.key("p99").value(h->quantile(0.99));
      w.end_object();
    }
    w.end_object();
    // Host parallelism context: BENCH trajectories are only comparable
    // across machines with this attached.
    w.key("threads").begin_object();
    w.key("hardware").value(par::hardware_threads());
    w.key("effective").value(par::thread_limit());
    w.end_object();
    w.end_object();
    out << '\n';
    // stderr, so census tables on stdout diff cleanly across runs.
    std::cerr << "bench: wrote JSON record to " << path_ << "\n";
  }

 private:
  std::string name_;
  std::string path_;
  std::chrono::steady_clock::time_point t0_;
  std::map<std::string, double> metrics_;
};

/// Agreement tally between a derived rule and the oracle.
struct Census {
  long both_true = 0;
  long both_false = 0;
  long rule_true_oracle_false = 0;   // unsoundness (must stay 0)
  long rule_false_oracle_true = 0;   // incompleteness of a "false" claim
  long undecided = 0;                // rule returned Unknown

  void tally(Tri rule, Tri oracle) {
    if (rule == Tri::Unknown || oracle == Tri::Unknown) {
      ++undecided;
    } else if (rule == Tri::True && oracle == Tri::True) {
      ++both_true;
    } else if (rule == Tri::False && oracle == Tri::False) {
      ++both_false;
    } else if (rule == Tri::True) {
      ++rule_true_oracle_false;
    } else {
      ++rule_false_oracle_true;
    }
  }

  long total() const {
    return both_true + both_false + rule_true_oracle_false +
           rule_false_oracle_true + undecided;
  }

  /// Accumulates another tally (the parallel_sweep chunk merge).
  void merge(const Census& o) {
    both_true += o.both_true;
    both_false += o.both_false;
    rule_true_oracle_false += o.rule_true_oracle_false;
    rule_false_oracle_true += o.rule_false_oracle_true;
    undecided += o.undecided;
  }

  std::vector<std::string> row(const std::string& label) const {
    return {label,
            std::to_string(total()),
            std::to_string(both_true),
            std::to_string(both_false),
            std::to_string(rule_true_oracle_false),
            std::to_string(rule_false_oracle_true),
            std::to_string(undecided)};
  }
};

inline Table census_table() {
  return Table({"rule", "samples", "agree:yes", "agree:no", "UNSOUND(yes/no)",
                "miss(no/yes)", "undecided"});
}

/// Iterations per parallel_sweep chunk: one census sample is itself heavy
/// (dozens of properties, thousands of tuples each), so small chunks keep
/// the pool balanced.
inline constexpr std::size_t kSweepGrain = 8;

/// Deterministic parallel census sweep: runs `body(rng, acc)` for each of
/// `n` iterations, each on an independent Rng seeded from (base_seed, i) via
/// par::mix_seed, accumulating into per-chunk `Acc`s merged in index order.
/// The table printed from the result is bit-identical for every MRT_THREADS
/// value, including 1 — the determinism contract of docs/PARALLELISM.md.
/// `Acc` needs a default constructor and `void merge(const Acc&)`.
template <typename Acc, typename Body>
Acc parallel_sweep(std::uint64_t base_seed, int n, Body&& body) {
  return par::parallel_reduce<Acc>(
      static_cast<std::size_t>(n), kSweepGrain, Acc{},
      [&](std::size_t b, std::size_t e, Acc& acc) {
        for (std::size_t i = b; i < e; ++i) {
          Rng rng(par::mix_seed(base_seed, i));
          body(rng, acc);
        }
      },
      [](Acc& into, Acc& from) { into.merge(from); });
}

}  // namespace mrt::bench
