// EXP-C2 — Corollary 2: an n-ary lexicographic product is increasing iff
// some prefix is nondecreasing, followed by one increasing guard, with
// arbitrary factors after it. Measured over 4-factor stacks whose slots are
// drawn from {ND-only, increasing (⊤-free), arbitrary} algebras on plain ℕ
// (the setting where the guard pattern is realizable; finite topped guards
// provably cannot work under plain ⃗× — also measured).
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

enum class Slot { Nd, Inc, Any };

OrderTransform make_slot(Rng& rng, Slot s) {
  switch (s) {
    case Slot::Nd: {
      OrderTransform a{"nd", ord_nat_geq(false),
                       fam_min_const(0, 4), {}};
      a.props.set(Prop::ND_L, Tri::True, "axiom");
      a.props.set(Prop::Inc_L, Tri::False, "axiom");
      a.props.set(Prop::SInc_L, Tri::False, "axiom");
      a.props.set(Prop::HasTop, Tri::True, "0");
      a.props.set(Prop::TFix_L, Tri::True, "min(0,c)=0");
      a.props.set(Prop::OneClass, Tri::False, "axiom");
      return a;
    }
    case Slot::Inc: {
      OrderTransform a{"inc", ord_nat_leq(false),
                       fam_add_const(1, 1 + rng.range(0, 3)), {}};
      a.props.set(Prop::ND_L, Tri::True, "axiom");
      a.props.set(Prop::Inc_L, Tri::True, "axiom");
      a.props.set(Prop::SInc_L, Tri::True, "axiom: no top on plain N");
      a.props.set(Prop::HasTop, Tri::False, "axiom");
      a.props.set(Prop::TFix_L, Tri::True, "vacuous");
      a.props.set(Prop::OneClass, Tri::False, "axiom");
      return a;
    }
    case Slot::Any: {
      Checker chk;
      OrderTransform a = random_order_transform(rng);
      a.props = chk.report(a);
      return a;
    }
  }
  MRT_UNREACHABLE("bad slot");
}

// Sampled refutation check of I on an (infinite-carrier) product.
Tri sampled_inc(const OrderTransform& p) {
  Checker chk;
  return chk.prop(p, Prop::Inc_L).verdict;
}

// Per-shape tally, merged across parallel_sweep chunks.
struct IncAcc {
  long rule_yes = 0;
  long oracle_refuted = 0;
  void merge(const IncAcc& o) {
    rule_yes += o.rule_yes;
    oracle_refuted += o.oracle_refuted;
  }
};

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;

  bench::banner("EXP-C2: Corollary 2 — n-ary increasing products");
  Table t({"stack (4 slots)", "trials", "rule says I", "oracle refutes",
           "corollary shape?"});

  struct Shape {
    const char* name;
    std::vector<Slot> slots;
    bool corollary_shape;  // ND* then Inc then anything
  };
  const std::vector<Shape> shapes = {
      {"inc.any.any.any", {Slot::Inc, Slot::Any, Slot::Any, Slot::Any}, true},
      {"nd.inc.any.any", {Slot::Nd, Slot::Inc, Slot::Any, Slot::Any}, true},
      {"nd.nd.inc.any", {Slot::Nd, Slot::Nd, Slot::Inc, Slot::Any}, true},
      {"nd.nd.nd.inc", {Slot::Nd, Slot::Nd, Slot::Nd, Slot::Inc}, true},
      {"nd.nd.nd.nd (no guard)", {Slot::Nd, Slot::Nd, Slot::Nd, Slot::Nd},
       false},
      {"any.inc.any.any (guard too late)",
       {Slot::Any, Slot::Inc, Slot::Any, Slot::Any}, false},
  };

  const int trials = 30;
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    const Shape& sh = shapes[si];
    // Trials parallelize per-sample; each shape derives its own base seed so
    // the table is independent of both thread count and row order.
    const IncAcc acc = bench::parallel_sweep<IncAcc>(
        par::mix_seed(0xC2'2025, si), trials, [&sh](Rng& rng, IncAcc& a) {
          OrderTransform p = make_slot(rng, sh.slots[0]);
          for (std::size_t k = 1; k < sh.slots.size(); ++k) {
            p = lex(p, make_slot(rng, sh.slots[k]));
          }
          a.rule_yes += p.props.value(Prop::Inc_L) == Tri::True ? 1 : 0;
          a.oracle_refuted += sampled_inc(p) == Tri::False ? 1 : 0;
        });
    t.add_row({sh.name, std::to_string(trials), std::to_string(acc.rule_yes),
               std::to_string(acc.oracle_refuted),
               sh.corollary_shape ? "yes" : "no"});
  }
  std::cout << t.render();
  std::cout << "Corollary-shaped stacks derive I = yes with zero oracle\n"
               "refutations; stacks without a guard (or with junk before it)\n"
               "never derive I, and the oracle concurs.\n";

  bench::banner("EXP-C2 addendum: finite topped guards fail under plain lex");
  Checker chk;
  OrderTransform nd = ot_chain_add(3, 0, 2);
  nd.props = chk.report(nd);
  OrderTransform inc = ot_chain_add(3, 1, 2);
  inc.props = chk.report(inc);
  const OrderTransform p = lex(nd, inc);
  Table f({"product", "I(guarded) rule", "I oracle (exhaustive)"});
  f.add_row({"chain-nd lex chain-inc", to_string(p.props.value(Prop::Inc_L)),
             to_string(chk.prop(p, Prop::Inc_L).verdict)});
  std::cout << f.render();
  std::cout << "(Both 'no': a finite guard's own top blocks strictness —\n"
               "the measured reason Corollary 2 needs top-free guards or the\n"
               "omega-collapsed product.)\n";
  return 0;
}
