// EXP-2005 — the original metarouting (SIGCOMM 2005) sufficient rules vs
// this paper's exact characterizations: a coverage ablation.
//
// Over random ⊤-free order transforms the two systems are compared on how
// many ND/I questions about S ⃗× T each *decides* (the 2005 system can only
// answer "yes" or "don't know"; the exact system answers both ways), and
// soundness of every decision is verified against the oracle.
#include "mrt/support/strings.hpp"
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

struct Coverage {
  long total = 0;
  long decided = 0;
  long correct = 0;

  void tally(Tri rule, Tri oracle) {
    ++total;
    if (rule == Tri::Unknown) return;
    ++decided;
    if (oracle == Tri::Unknown || rule == oracle) ++correct;
  }

  std::vector<std::string> row(const std::string& label) const {
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(decided) /
                               static_cast<double>(total);
    return {label, std::to_string(total), std::to_string(decided),
            format_double(pct, 1) + "%", std::to_string(decided - correct)};
  }
};

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;
  Checker chk;
  Rng rng(0x2005'EAC7);

  Coverage c2005_nd, exact_nd, c2005_inc, exact_inc;
  for (int i = 0; i < 2500; ++i) {
    OrderTransform s = random_order_transform(rng);
    OrderTransform t = random_order_transform(rng);
    s.props = chk.report(s);
    t.props = chk.report(t);
    if (s.props.value(Prop::HasTop) != Tri::False) continue;  // 2005 setting
    const OrderTransform p = lex(s, t);
    const Tri o_nd = chk.prop(p, Prop::ND_L).verdict;
    const Tri o_inc = chk.prop(p, Prop::Inc_L).verdict;

    c2005_nd.tally(classic2005_nd_lex(s.props, t.props), o_nd);
    exact_nd.tally(paper_rule_nd_lex(s.props, t.props), o_nd);
    if (t.props.value(Prop::HasTop) == Tri::False) {
      c2005_inc.tally(classic2005_inc_lex(s.props, t.props), o_inc);
      exact_inc.tally(paper_rule_inc_lex(s.props, t.props), o_inc);
    }
  }

  bench::banner("EXP-2005: 2005 sufficient rules vs exact characterizations");
  Table t({"rule system", "questions", "decided", "coverage", "wrong"});
  t.add_row(c2005_nd.row("ND: 2005 (ND&ND => ND)"));
  t.add_row(exact_nd.row("ND: exact (I(S) | ND&ND, both directions)"));
  t.add_row(c2005_inc.row("I:  2005 (I | ND&I => I)"));
  t.add_row(exact_inc.row("I:  exact (iff)"));
  std::cout << t.render();
  std::cout << "Reproduced claim: the exact rules decide every question\n"
               "(100% coverage) including refutations; the 2005 system leaves\n"
               "everything that is not provably-yes undecided. 'wrong' must\n"
               "be zero for both.\n";
  return 0;
}
