// EXP-2005 — the original metarouting (SIGCOMM 2005) sufficient rules vs
// this paper's exact characterizations: a coverage ablation.
//
// Over random ⊤-free order transforms the two systems are compared on how
// many ND/I questions about S ⃗× T each *decides* (the 2005 system can only
// answer "yes" or "don't know"; the exact system answers both ways), and
// soundness of every decision is verified against the oracle.
#include "mrt/support/strings.hpp"
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

struct Coverage {
  long total = 0;
  long decided = 0;
  long correct = 0;

  void tally(Tri rule, Tri oracle) {
    ++total;
    if (rule == Tri::Unknown) return;
    ++decided;
    if (oracle == Tri::Unknown || rule == oracle) ++correct;
  }

  std::vector<std::string> row(const std::string& label) const {
    const double pct =
        total == 0 ? 0.0 : 100.0 * static_cast<double>(decided) /
                               static_cast<double>(total);
    return {label, std::to_string(total), std::to_string(decided),
            format_double(pct, 1) + "%", std::to_string(decided - correct)};
  }

  void merge(const Coverage& o) {
    total += o.total;
    decided += o.decided;
    correct += o.correct;
  }
};

// All four coverage tallies, merged across parallel_sweep chunks.
struct R5Acc {
  Coverage c2005_nd, exact_nd, c2005_inc, exact_inc;
  void merge(const R5Acc& o) {
    c2005_nd.merge(o.c2005_nd);
    exact_nd.merge(o.exact_nd);
    c2005_inc.merge(o.c2005_inc);
    exact_inc.merge(o.exact_inc);
  }
};

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;

  const R5Acc acc = bench::parallel_sweep<R5Acc>(
      0x2005'EAC7, 2500, [](Rng& rng, R5Acc& out) {
        Checker chk;
        OrderTransform s = random_order_transform(rng);
        OrderTransform t = random_order_transform(rng);
        s.props = chk.report(s);
        t.props = chk.report(t);
        if (s.props.value(Prop::HasTop) != Tri::False) return;  // 2005 setting
        const OrderTransform p = lex(s, t);
        const Tri o_nd = chk.prop(p, Prop::ND_L).verdict;
        const Tri o_inc = chk.prop(p, Prop::Inc_L).verdict;

        out.c2005_nd.tally(classic2005_nd_lex(s.props, t.props), o_nd);
        out.exact_nd.tally(paper_rule_nd_lex(s.props, t.props), o_nd);
        if (t.props.value(Prop::HasTop) == Tri::False) {
          out.c2005_inc.tally(classic2005_inc_lex(s.props, t.props), o_inc);
          out.exact_inc.tally(paper_rule_inc_lex(s.props, t.props), o_inc);
        }
      });

  bench::banner("EXP-2005: 2005 sufficient rules vs exact characterizations");
  Table t({"rule system", "questions", "decided", "coverage", "wrong"});
  t.add_row(acc.c2005_nd.row("ND: 2005 (ND&ND => ND)"));
  t.add_row(acc.exact_nd.row("ND: exact (I(S) | ND&ND, both directions)"));
  t.add_row(acc.c2005_inc.row("I:  2005 (I | ND&I => I)"));
  t.add_row(acc.exact_inc.row("I:  exact (iff)"));
  std::cout << t.render();
  std::cout << "Reproduced claim: the exact rules decide every question\n"
               "(100% coverage) including refutations; the 2005 system leaves\n"
               "everything that is not provably-yes undecided. 'wrong' must\n"
               "be zero for both.\n";
  return 0;
}
