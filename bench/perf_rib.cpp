// EXP-RIB — batched all-destination routing tables vs per-destination
// solvers.
//
// Four workloads behind one report:
//   1. cold table build on a 1024-node Gao–Rexford internet: one batched
//      RibSolver::solve over a 64-destination subset vs 64 independent
//      standalone dyn::Solver(Bellman) cold solves. Columns are
//      byte-compared before anything is timed — a divergence aborts with
//      exit 1. The ratio is the headline speedup scripts/bench_json.sh
//      gates into BENCH_rib.json (≥ 3×).
//   2. warm multi-destination maintenance on a 10k-node Gao–Rexford
//      internet: arc-flap pairs absorbed warm (MRT_DYN on, one shared
//      invalidation pass) vs cold (toggle off, full batched re-solve),
//      with the per-destination affected-set stats the gate requires, the
//      RibSolver peak-RSS footprint, and a standalone warm baseline —
//      per-destination dyn solvers held warm through the same flap
//      sequence, with a bench-side assertion that every one of their
//      updates actually takes the warm path (rib.warm.baseline_warm).
//   3. SIMD cold builds on a depth-4 lex stack (4 words/column, pure
//      AddSat/MinWord programs): the same batched solve with MRT_SIMD on
//      vs off, byte-compared (rib.simd_invariant) and gated ≥ 1.5×
//      (speedup.rib.simd) — the select_block-dominated workload the
//      vertical-lane kernels were built for.
//   4. invariance sweeps on a smaller internet: the same delta sequence
//      under MRT_THREADS ∈ {1,4}, MRT_DYN ∈ {on,off}, and MRT_COMPILE
//      (WeightEngine present/absent) must produce byte-identical columns;
//      each axis reports a 0/1 metric the gate pins to 1, so the shell
//      side needs no stdout diffing.
#include "bench_util.hpp"

#include <sys/resource.h>

#include <memory>

#include "mrt/compile/simd.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/rib/rib.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

/// Best-of-`reps` wall time of `f`, in milliseconds.
template <typename F>
double time_ms(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

bool same_routing(const Routing& a, const Routing& b) {
  if (a.weight.size() != b.weight.size()) return false;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    if (a.weight[v].has_value() != b.weight[v].has_value()) return false;
    if (a.weight[v] && !(*a.weight[v] == *b.weight[v])) return false;
    if (a.next_arc[v] != b.next_arc[v]) return false;
  }
  return true;
}

/// `k` destinations spread evenly over [0, n): deterministic, no RNG state
/// shared with the topology generator.
std::vector<int> spread_dests(int n, int k) {
  std::vector<int> d;
  for (int i = 0; i < k; ++i) {
    d.push_back(static_cast<int>((static_cast<long>(i) * n) / k));
  }
  return d;
}

/// Runs `n_flaps` arc_down/arc_up pairs through `rib` with the dyn toggle
/// forced to `warm`; arcs cycle deterministically. Returns the mean
/// affected fraction (in %) across the warm updates that changed arcs.
double flap_loop(rib::RibSolver& rib, int n_flaps, bool warm,
                 double* max_pct = nullptr) {
  const bool before = dyn::enabled();
  dyn::set_enabled(warm);
  const int m = rib.net().graph().num_arcs();
  const int n = rib.net().num_nodes();
  double sum_pct = 0.0;
  long counted = 0;
  for (int i = 0; i < n_flaps; ++i) {
    const int arc = (i * 7919) % m;
    for (const bool down : {true, false}) {
      dyn::TopologyDelta d;
      if (down) {
        d.arc_down(arc);
      } else {
        d.arc_up(arc);
      }
      rib.update(d);
      const rib::RibStats& st = rib.last_update();
      if (st.changed_arcs == 0) continue;
      sum_pct += 100.0 * st.affected_mean_fraction();
      ++counted;
      if (max_pct != nullptr && n > 0) {
        const double mx =
            100.0 * static_cast<double>(st.affected_max()) / n;
        if (mx > *max_pct) *max_pct = mx;
      }
    }
  }
  dyn::set_enabled(before);
  return counted > 0 ? sum_pct / static_cast<double>(counted) : 0.0;
}

/// One full run of the invariance workload under explicit toggles: cold
/// solve + a deterministic flap sequence, materializing every column after
/// every update. Returns all snapshots for byte comparison.
std::vector<Routing> invariance_run(const Scenario& sc,
                                    const std::vector<int>& dests,
                                    bool with_engine, bool dyn_on,
                                    int threads) {
  const bool dyn_before = dyn::enabled();
  const int threads_before = par::thread_limit();
  dyn::set_enabled(dyn_on);
  par::set_thread_limit(threads);

  const compile::WeightEngine eng(sc.alg);
  rib::RibSolver rib(sc.alg, with_engine ? &eng : nullptr);
  rib.solve(sc.net, dests, sc.origin);
  std::vector<Routing> snaps;
  auto snapshot = [&] {
    for (int c = 0; c < rib.num_columns(); ++c) snaps.push_back(rib.routing(c));
  };
  snapshot();
  const int m = sc.net.graph().num_arcs();
  for (int i = 0; i < 6; ++i) {
    const int arc = (i * 7919) % m;
    rib.update(dyn::TopologyDelta{}.arc_down(arc));
    snapshot();
    rib.update(dyn::TopologyDelta{}.arc_up(arc));
    snapshot();
  }

  dyn::set_enabled(dyn_before);
  par::set_thread_limit(threads_before);
  return snaps;
}

bool same_snaps(const std::vector<Routing>& a, const std::vector<Routing>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_routing(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("perf_rib", argc, argv);
  bench::banner("EXP-RIB: batched routing tables vs per-destination solvers");

  Table table({"workload", "baseline_ms", "batched_ms", "speedup",
               "affected%"});
  bool ok = true;
  const int kReps = 5;

  // --- cold: one batched solve vs N independent solves (1024 nodes) ------
  {
    Rng rng(0x51B);
    Scenario sc = gao_rexford_hierarchy(rng, 1024, 512);
    const int kDests = 64;
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), kDests);
    const compile::WeightEngine eng(sc.alg);

    rib::RibSolver rib(sc.alg, &eng);
    rib.solve(sc.net, dests, sc.origin);
    report.metric("rib.flat", rib.batched_flat() ? 1.0 : 0.0);

    // Differential check before timing: every column must agree byte-wise
    // with a standalone Bellman solver given the same engine.
    auto single = dyn::make_solver(dyn::EngineKind::Bellman, sc.alg, &eng);
    for (int c = 0; c < kDests; ++c) {
      single->solve(sc.net, dests[static_cast<std::size_t>(c)], sc.origin);
      if (!same_routing(rib.routing(c), single->routing())) {
        std::cerr << "perf_rib: batched column " << c
                  << " diverged from a standalone solve (dest "
                  << dests[static_cast<std::size_t>(c)] << ")\n";
        ok = false;
      }
    }

    const double single_ms = time_ms(kReps, [&] {
      for (int d : dests) single->solve(sc.net, d, sc.origin);
    });
    const double batched_ms =
        time_ms(kReps, [&] { rib.solve(sc.net, dests, sc.origin); });
    report.metric("speedup.rib.cold_batched", single_ms / batched_ms);
    table.add_row({"cold 1024n x 64 dests", fmt(single_ms), fmt(batched_ms),
                   fmt(single_ms / batched_ms), "-"});
  }

  // --- warm: multi-destination flap maintenance (10k nodes) --------------
  {
    Rng rng(0x51C);
    Scenario sc = gao_rexford_hierarchy(rng, 10000, 4000);
    const int kDests = 64;
    const int kFlaps = 8;
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), kDests);
    const compile::WeightEngine eng(sc.alg);

    rib::RibSolver rib(sc.alg, &eng);
    const double cold_build_ms =
        time_ms(1, [&] { rib.solve(sc.net, dests, sc.origin); });
    report.metric("rib.cold_build_10k_ms", cold_build_ms);

    // Peak RSS sampled right after the all-64-column 10k build, before the
    // standalone baseline binds its own solvers: at this point the high
    // water mark is dominated by the RibSolver footprint the leaner block
    // layout is supposed to shrink. ru_maxrss is in KiB on Linux.
    {
      struct rusage ru {};
      getrusage(RUSAGE_SELF, &ru);
      report.metric("rib.peak_rss_mb",
                    static_cast<double>(ru.ru_maxrss) / 1024.0);
    }

    double max_pct = 0.0;
    const double affected_pct = flap_loop(rib, kFlaps, true, &max_pct);
    const double warm_ms =
        time_ms(1, [&] { flap_loop(rib, kFlaps, true); });
    const double cold_ms =
        time_ms(1, [&] { flap_loop(rib, kFlaps, false); });
    report.metric("speedup.rib.warm_flaps", cold_ms / warm_ms);
    report.metric("rib.warm.affected_pct", affected_pct);
    report.metric("rib.warm.affected_max_pct", max_pct);
    table.add_row({"warm flaps 10000n x 64 dests", fmt(cold_ms), fmt(warm_ms),
                   fmt(cold_ms / warm_ms), fmt(affected_pct)});

    // Standalone warm baseline: per-destination dyn solvers held warm
    // through the same flap sequence, with a bench-side assertion that
    // every changed-arc update really takes the warm path (cold fallbacks
    // would silently inflate the batched speedup — the dyn.updates_cold
    // confusion this workload used to produce came from solve() calls
    // being counted as updates). Binding 64 standalone solvers to the
    // 10k-node net would dwarf the RIB's own footprint, so the baseline
    // holds a 16-destination subset and the speedup is per destination.
    {
      const int kBaseDests = 16;
      const bool dyn_before = dyn::enabled();
      dyn::set_enabled(true);
      std::vector<std::unique_ptr<Solver>> singles;
      for (int c = 0; c < kBaseDests; ++c) {
        singles.push_back(
            dyn::make_solver(dyn::EngineKind::Bellman, sc.alg, &eng));
        singles.back()->solve(sc.net, dests[static_cast<std::size_t>(c)],
                              sc.origin);
      }
      bool baseline_warm = true;
      const int m = sc.net.graph().num_arcs();
      auto single_flaps = [&] {
        for (int i = 0; i < kFlaps; ++i) {
          const int arc = (i * 7919) % m;
          for (const bool down : {true, false}) {
            dyn::TopologyDelta d;
            if (down) {
              d.arc_down(arc);
            } else {
              d.arc_up(arc);
            }
            for (auto& s : singles) {
              s->update(d);
              const dyn::UpdateStats& st = s->last_update();
              if (st.changed_arcs > 0 && st.cold) baseline_warm = false;
            }
          }
        }
      };
      const double single_warm_ms = time_ms(1, single_flaps);
      dyn::set_enabled(dyn_before);
      report.metric("rib.warm.baseline_warm", baseline_warm ? 1.0 : 0.0);
      const double per_dest =
          (single_warm_ms / kBaseDests) / (warm_ms / kDests);
      report.metric("speedup.rib.warm_batched", per_dest);
      table.add_row({"warm flaps standalone/dest",
                     fmt(single_warm_ms / kBaseDests), fmt(warm_ms / kDests),
                     fmt(per_dest), "-"});
      if (!baseline_warm) {
        std::cerr << "perf_rib: standalone warm baseline fell back to a "
                     "cold solve\n";
        ok = false;
      }
    }

    // Warm-drift check: after the flap storm every arc is back up, so the
    // warm-maintained table must match a fresh cold build byte for byte.
    rib::RibSolver fresh(sc.alg, &eng);
    fresh.solve(sc.net, dests, sc.origin);
    for (int c = 0; c < kDests; ++c) {
      if (!same_routing(rib.routing(c), fresh.routing(c))) {
        std::cerr << "perf_rib: warm-maintained column " << c
                  << " drifted from a fresh cold build\n";
        ok = false;
      }
    }
  }

  // --- simd: multi-column vertical lanes on a deep lex stack --------------
  {
    // stacked(4) lowers to four flat words of pure AddSat/MinWord per arc —
    // the vec-capable, select_block-dominated shape the lane kernels target.
    Rng rng(0x51E);
    Scenario sc = random_scenario(bench::stacked(4), bench::stacked_origin(4),
                                  rng, 1024, 2048);
    const int kDests = 64;
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), kDests);
    const compile::WeightEngine eng(sc.alg);
    rib::RibSolver rib(sc.alg, &eng);
    const bool simd_before = compile::simd::enabled();

    compile::simd::set_enabled(true);
    rib.solve(sc.net, dests, sc.origin);
    std::vector<Routing> on;
    for (int c = 0; c < kDests; ++c) on.push_back(rib.routing(c));

    compile::simd::set_enabled(false);
    rib.solve(sc.net, dests, sc.origin);
    std::vector<Routing> off;
    for (int c = 0; c < kDests; ++c) off.push_back(rib.routing(c));

    // Interleave the A/B reps (best-of-kReps each) so frequency or load
    // drift during the measurement hits both sides alike instead of biasing
    // whichever side ran second.
    double simd_ms = 1e300;
    double scalar_ms = 1e300;
    for (int r = 0; r < kReps; ++r) {
      compile::simd::set_enabled(true);
      simd_ms = std::min(
          simd_ms, time_ms(1, [&] { rib.solve(sc.net, dests, sc.origin); }));
      compile::simd::set_enabled(false);
      scalar_ms = std::min(
          scalar_ms, time_ms(1, [&] { rib.solve(sc.net, dests, sc.origin); }));
    }
    compile::simd::set_enabled(simd_before);

    const bool simd_inv = same_snaps(on, off);
    report.metric("speedup.rib.simd", scalar_ms / simd_ms);
    report.metric("rib.simd_invariant", simd_inv ? 1.0 : 0.0);
    table.add_row({"simd cold 1024n x 64 dests x 4w", fmt(scalar_ms),
                   fmt(simd_ms), fmt(scalar_ms / simd_ms), "-"});
    if (!simd_inv) {
      std::cerr << "perf_rib: MRT_SIMD on/off columns diverged\n";
      ok = false;
    }
  }

  // --- invariance: threads / dyn toggle / compile toggle ------------------
  {
    Rng rng(0x51D);
    Scenario sc = gao_rexford_hierarchy(rng, 256, 128);
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), 32);
    const std::vector<Routing> base =
        invariance_run(sc, dests, true, true, 1);
    const bool thread_inv =
        same_snaps(base, invariance_run(sc, dests, true, true, 4));
    const bool toggle_inv =
        same_snaps(base, invariance_run(sc, dests, true, false, 1));
    const bool compile_inv =
        same_snaps(base, invariance_run(sc, dests, false, true, 1));
    report.metric("rib.thread_invariant", thread_inv ? 1.0 : 0.0);
    report.metric("rib.toggle_invariant", toggle_inv ? 1.0 : 0.0);
    report.metric("rib.compile_invariant", compile_inv ? 1.0 : 0.0);
    if (!thread_inv) std::cerr << "perf_rib: thread-count invariance failed\n";
    if (!toggle_inv) std::cerr << "perf_rib: MRT_DYN invariance failed\n";
    if (!compile_inv) std::cerr << "perf_rib: MRT_COMPILE invariance failed\n";
    ok = ok && thread_inv && toggle_inv && compile_inv;
  }

  std::cout << table;
  report.metric("identical", ok ? 1.0 : 0.0);
  if (!ok) {
    std::cerr << "perf_rib: differential checks failed\n";
  }
  return ok ? 0 : 1;
}
