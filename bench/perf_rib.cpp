// EXP-RIB — batched all-destination routing tables vs per-destination
// solvers.
//
// Three workloads behind one report:
//   1. cold table build on a 1024-node Gao–Rexford internet: one batched
//      RibSolver::solve over a 64-destination subset vs 64 independent
//      standalone dyn::Solver(Bellman) cold solves. Columns are
//      byte-compared before anything is timed — a divergence aborts with
//      exit 1. The ratio is the headline speedup scripts/bench_json.sh
//      gates into BENCH_rib.json (≥ 3×).
//   2. warm multi-destination maintenance on a 10k-node Gao–Rexford
//      internet: arc-flap pairs absorbed warm (MRT_DYN on, one shared
//      invalidation pass) vs cold (toggle off, full batched re-solve),
//      with the per-destination affected-set stats the gate requires.
//   3. invariance sweeps on a smaller internet: the same delta sequence
//      under MRT_THREADS ∈ {1,4}, MRT_DYN ∈ {on,off}, and MRT_COMPILE
//      (WeightEngine present/absent) must produce byte-identical columns;
//      each axis reports a 0/1 metric the gate pins to 1, so the shell
//      side needs no stdout diffing.
#include "bench_util.hpp"

#include "mrt/dyn/solver.hpp"
#include "mrt/rib/rib.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

/// Best-of-`reps` wall time of `f`, in milliseconds.
template <typename F>
double time_ms(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

bool same_routing(const Routing& a, const Routing& b) {
  if (a.weight.size() != b.weight.size()) return false;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    if (a.weight[v].has_value() != b.weight[v].has_value()) return false;
    if (a.weight[v] && !(*a.weight[v] == *b.weight[v])) return false;
    if (a.next_arc[v] != b.next_arc[v]) return false;
  }
  return true;
}

/// `k` destinations spread evenly over [0, n): deterministic, no RNG state
/// shared with the topology generator.
std::vector<int> spread_dests(int n, int k) {
  std::vector<int> d;
  for (int i = 0; i < k; ++i) {
    d.push_back(static_cast<int>((static_cast<long>(i) * n) / k));
  }
  return d;
}

/// Runs `n_flaps` arc_down/arc_up pairs through `rib` with the dyn toggle
/// forced to `warm`; arcs cycle deterministically. Returns the mean
/// affected fraction (in %) across the warm updates that changed arcs.
double flap_loop(rib::RibSolver& rib, int n_flaps, bool warm,
                 double* max_pct = nullptr) {
  const bool before = dyn::enabled();
  dyn::set_enabled(warm);
  const int m = rib.net().graph().num_arcs();
  const int n = rib.net().num_nodes();
  double sum_pct = 0.0;
  long counted = 0;
  for (int i = 0; i < n_flaps; ++i) {
    const int arc = (i * 7919) % m;
    for (const bool down : {true, false}) {
      dyn::TopologyDelta d;
      if (down) {
        d.arc_down(arc);
      } else {
        d.arc_up(arc);
      }
      rib.update(d);
      const rib::RibStats& st = rib.last_update();
      if (st.changed_arcs == 0) continue;
      sum_pct += 100.0 * st.affected_mean_fraction();
      ++counted;
      if (max_pct != nullptr && n > 0) {
        const double mx =
            100.0 * static_cast<double>(st.affected_max()) / n;
        if (mx > *max_pct) *max_pct = mx;
      }
    }
  }
  dyn::set_enabled(before);
  return counted > 0 ? sum_pct / static_cast<double>(counted) : 0.0;
}

/// One full run of the invariance workload under explicit toggles: cold
/// solve + a deterministic flap sequence, materializing every column after
/// every update. Returns all snapshots for byte comparison.
std::vector<Routing> invariance_run(const Scenario& sc,
                                    const std::vector<int>& dests,
                                    bool with_engine, bool dyn_on,
                                    int threads) {
  const bool dyn_before = dyn::enabled();
  const int threads_before = par::thread_limit();
  dyn::set_enabled(dyn_on);
  par::set_thread_limit(threads);

  const compile::WeightEngine eng(sc.alg);
  rib::RibSolver rib(sc.alg, with_engine ? &eng : nullptr);
  rib.solve(sc.net, dests, sc.origin);
  std::vector<Routing> snaps;
  auto snapshot = [&] {
    for (int c = 0; c < rib.num_columns(); ++c) snaps.push_back(rib.routing(c));
  };
  snapshot();
  const int m = sc.net.graph().num_arcs();
  for (int i = 0; i < 6; ++i) {
    const int arc = (i * 7919) % m;
    rib.update(dyn::TopologyDelta{}.arc_down(arc));
    snapshot();
    rib.update(dyn::TopologyDelta{}.arc_up(arc));
    snapshot();
  }

  dyn::set_enabled(dyn_before);
  par::set_thread_limit(threads_before);
  return snaps;
}

bool same_snaps(const std::vector<Routing>& a, const std::vector<Routing>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!same_routing(a[i], b[i])) return false;
  }
  return true;
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("perf_rib", argc, argv);
  bench::banner("EXP-RIB: batched routing tables vs per-destination solvers");

  Table table({"workload", "baseline_ms", "batched_ms", "speedup",
               "affected%"});
  bool ok = true;
  const int kReps = 5;

  // --- cold: one batched solve vs N independent solves (1024 nodes) ------
  {
    Rng rng(0x51B);
    Scenario sc = gao_rexford_hierarchy(rng, 1024, 512);
    const int kDests = 64;
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), kDests);
    const compile::WeightEngine eng(sc.alg);

    rib::RibSolver rib(sc.alg, &eng);
    rib.solve(sc.net, dests, sc.origin);
    report.metric("rib.flat", rib.batched_flat() ? 1.0 : 0.0);

    // Differential check before timing: every column must agree byte-wise
    // with a standalone Bellman solver given the same engine.
    auto single = dyn::make_solver(dyn::EngineKind::Bellman, sc.alg, &eng);
    for (int c = 0; c < kDests; ++c) {
      single->solve(sc.net, dests[static_cast<std::size_t>(c)], sc.origin);
      if (!same_routing(rib.routing(c), single->routing())) {
        std::cerr << "perf_rib: batched column " << c
                  << " diverged from a standalone solve (dest "
                  << dests[static_cast<std::size_t>(c)] << ")\n";
        ok = false;
      }
    }

    const double single_ms = time_ms(kReps, [&] {
      for (int d : dests) single->solve(sc.net, d, sc.origin);
    });
    const double batched_ms =
        time_ms(kReps, [&] { rib.solve(sc.net, dests, sc.origin); });
    report.metric("speedup.rib.cold_batched", single_ms / batched_ms);
    table.add_row({"cold 1024n x 64 dests", fmt(single_ms), fmt(batched_ms),
                   fmt(single_ms / batched_ms), "-"});
  }

  // --- warm: multi-destination flap maintenance (10k nodes) --------------
  {
    Rng rng(0x51C);
    Scenario sc = gao_rexford_hierarchy(rng, 10000, 4000);
    const int kDests = 64;
    const int kFlaps = 8;
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), kDests);
    const compile::WeightEngine eng(sc.alg);

    rib::RibSolver rib(sc.alg, &eng);
    const double cold_build_ms =
        time_ms(1, [&] { rib.solve(sc.net, dests, sc.origin); });
    report.metric("rib.cold_build_10k_ms", cold_build_ms);

    double max_pct = 0.0;
    const double affected_pct = flap_loop(rib, kFlaps, true, &max_pct);
    const double warm_ms =
        time_ms(1, [&] { flap_loop(rib, kFlaps, true); });
    const double cold_ms =
        time_ms(1, [&] { flap_loop(rib, kFlaps, false); });
    report.metric("speedup.rib.warm_flaps", cold_ms / warm_ms);
    report.metric("rib.warm.affected_pct", affected_pct);
    report.metric("rib.warm.affected_max_pct", max_pct);
    table.add_row({"warm flaps 10000n x 64 dests", fmt(cold_ms), fmt(warm_ms),
                   fmt(cold_ms / warm_ms), fmt(affected_pct)});

    // Warm-drift check: after the flap storm every arc is back up, so the
    // warm-maintained table must match a fresh cold build byte for byte.
    rib::RibSolver fresh(sc.alg, &eng);
    fresh.solve(sc.net, dests, sc.origin);
    for (int c = 0; c < kDests; ++c) {
      if (!same_routing(rib.routing(c), fresh.routing(c))) {
        std::cerr << "perf_rib: warm-maintained column " << c
                  << " drifted from a fresh cold build\n";
        ok = false;
      }
    }
  }

  // --- invariance: threads / dyn toggle / compile toggle ------------------
  {
    Rng rng(0x51D);
    Scenario sc = gao_rexford_hierarchy(rng, 256, 128);
    const std::vector<int> dests = spread_dests(sc.net.num_nodes(), 32);
    const std::vector<Routing> base =
        invariance_run(sc, dests, true, true, 1);
    const bool thread_inv =
        same_snaps(base, invariance_run(sc, dests, true, true, 4));
    const bool toggle_inv =
        same_snaps(base, invariance_run(sc, dests, true, false, 1));
    const bool compile_inv =
        same_snaps(base, invariance_run(sc, dests, false, true, 1));
    report.metric("rib.thread_invariant", thread_inv ? 1.0 : 0.0);
    report.metric("rib.toggle_invariant", toggle_inv ? 1.0 : 0.0);
    report.metric("rib.compile_invariant", compile_inv ? 1.0 : 0.0);
    if (!thread_inv) std::cerr << "perf_rib: thread-count invariance failed\n";
    if (!toggle_inv) std::cerr << "perf_rib: MRT_DYN invariance failed\n";
    if (!compile_inv) std::cerr << "perf_rib: MRT_COMPILE invariance failed\n";
    ok = ok && thread_inv && toggle_inv && compile_inv;
  }

  std::cout << table;
  report.metric("identical", ok ? 1.0 : 0.0);
  if (!ok) {
    std::cerr << "perf_rib: differential checks failed\n";
  }
  return ok ? 0 : 1;
}
