// EXP-COMPILE — boxed interpreter vs compiled flat kernels on the routing
// hot loops.
//
// Every workload first differentially verifies that the compiled run
// produces the identical result, then times both paths and reports
// speedup.* metrics into BENCH_compile.json. The bench aborts (exit 1) if
// any paper algebra falls back to boxed — compile.fallbacks must stay 0
// here, which scripts/bench_json.sh gates.
#include "bench_util.hpp"

#include "mrt/compile/engine.hpp"
#include "mrt/compile/semiring.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/bellman.hpp"
#include "mrt/routing/closure.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

using compile::CompiledBisemigroup;
using compile::CompiledNet;
using compile::WeightEngine;

/// Best-of-`reps` wall time of `f`, in milliseconds.
template <typename F>
double time_ms(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

bool same_routing(const Routing& a, const Routing& b) {
  if (a.weight.size() != b.weight.size()) return false;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    if (a.weight[v].has_value() != b.weight[v].has_value()) return false;
    if (a.weight[v] && !(*a.weight[v] == *b.weight[v])) return false;
    if (a.next_arc[v] != b.next_arc[v]) return false;
  }
  return true;
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("perf_compile", argc, argv);
  bench::banner("EXP-COMPILE: boxed interpreter vs compiled flat kernels");

  Table table({"workload", "boxed_ms", "compiled_ms", "speedup"});
  bool ok = true;
  const int kReps = 5;

  // Generalized Dijkstra and synchronous Bellman–Ford over deep-lex stacks.
  for (int depth : {1, 2, 3, 4}) {
    const OrderTransform alg = bench::stacked(depth);
    const Value origin = bench::stacked_origin(depth);
    Rng rng(42);
    LabeledGraph net =
        label_randomly(alg, random_connected(rng, 192, 384), rng);
    const WeightEngine eng(alg);
    if (!eng.compiled()) {
      std::cerr << "perf_compile: " << alg.name << " fell back: "
                << compile::fallback_name(eng.fallback()) << "\n";
      ok = false;
      continue;
    }
    const CompiledNet cn = CompiledNet::make(eng, net);
    if (!cn.ok()) {
      std::cerr << "perf_compile: a label of " << alg.name
                << " fell back to boxed\n";
      ok = false;
      continue;
    }
    if (!same_routing(dijkstra(alg, net, 0, origin),
                      dijkstra(alg, net, 0, origin, &cn))) {
      std::cerr << "perf_compile: compiled dijkstra diverged from boxed at "
                << "depth " << depth << "\n";
      ok = false;
      continue;
    }
    const double dj_boxed = time_ms(kReps, [&] {
      for (int i = 0; i < 10; ++i) {
        Routing r = dijkstra(alg, net, 0, origin);
        (void)r;
      }
    });
    const double dj_flat = time_ms(kReps, [&] {
      for (int i = 0; i < 10; ++i) {
        Routing r = dijkstra(alg, net, 0, origin, &cn);
        (void)r;
      }
    });
    const std::string d = std::to_string(depth);
    report.metric("speedup.dijkstra.depth" + d, dj_boxed / dj_flat);
    table.add_row({"dijkstra depth " + d, fmt(dj_boxed),
               fmt(dj_flat), fmt(dj_boxed / dj_flat)});

    const BellmanResult bb = bellman_sync(alg, net, 0, origin);
    const BellmanResult bf = bellman_sync(alg, net, 0, origin, {}, &cn);
    if (!same_routing(bb.routing, bf.routing) ||
        bb.iterations != bf.iterations) {
      std::cerr << "perf_compile: compiled bellman diverged from boxed at "
                << "depth " << depth << "\n";
      ok = false;
      continue;
    }
    const double bm_boxed = time_ms(kReps, [&] {
      BellmanResult r = bellman_sync(alg, net, 0, origin);
      (void)r;
    });
    const double bm_flat = time_ms(kReps, [&] {
      BellmanResult r = bellman_sync(alg, net, 0, origin, {}, &cn);
      (void)r;
    });
    report.metric("speedup.bellman.depth" + d, bm_boxed / bm_flat);
    table.add_row({"bellman depth " + d, fmt(bm_boxed),
               fmt(bm_flat),
               fmt(bm_boxed / bm_flat)});
  }

  // Kleene closure over the lex bisemigroup (Theorem 2's compiled case split).
  {
    const Bisemigroup alg = lex(bs_shortest_path(), bs_widest_path());
    const CompiledBisemigroup cb = CompiledBisemigroup::compile(alg);
    if (!cb.ok()) {
      std::cerr << "perf_compile: " << alg.name << " fell back: "
                << compile::fallback_name(cb.fallback()) << "\n";
      ok = false;
    } else {
      Rng rng(42);
      Digraph g = random_connected(rng, 64, 160);
      ValueVec w;
      for (int id = 0; id < g.num_arcs(); ++id) {
        w.push_back(Value::pair(Value::integer(rng.range(1, 9)),
                                Value::integer(rng.range(0, 9))));
      }
      const WeightMatrix a = arc_matrix(alg, g, w);
      const double cl_boxed = time_ms(kReps, [&] {
        ClosureResult r = kleene_closure(alg, a);
        (void)r;
      });
      const double cl_flat = time_ms(kReps, [&] {
        ClosureResult r = kleene_closure(alg, a, &cb);
        (void)r;
      });
      report.metric("speedup.closure.lex", cl_boxed / cl_flat);
      table.add_row({"kleene closure lex", fmt(cl_boxed),
                 fmt(cl_flat),
                 fmt(cl_boxed / cl_flat)});
    }
  }

  // The asynchronous simulator, whose reselect loop dominates chaos
  // campaigns.
  {
    const OrderTransform alg = bench::stacked(3);
    const Value origin = bench::stacked_origin(3);
    Rng rng(42);
    LabeledGraph net = label_randomly(alg, random_connected(rng, 48, 96), rng);
    const WeightEngine eng(alg);
    const double sim_boxed = time_ms(kReps, [&] {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SimOptions opts;
        opts.seed = seed;
        PathVectorSim sim(alg, net, 0, origin, opts);
        SimResult r = sim.run();
        (void)r;
      }
    });
    const double sim_flat = time_ms(kReps, [&] {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SimOptions opts;
        opts.seed = seed;
        PathVectorSim sim(alg, net, 0, origin, opts, &eng);
        SimResult r = sim.run();
        (void)r;
      }
    });
    report.metric("speedup.sim.depth3", sim_boxed / sim_flat);
    table.add_row({"path-vector sim depth 3", fmt(sim_boxed),
               fmt(sim_flat),
               fmt(sim_boxed / sim_flat)});
  }

  std::cout << table;

  // Fallback accounting: every workload above must have compiled.
  const std::uint64_t fallbacks =
      obs::registry().counter_value("compile.fallbacks") +
      obs::registry().counter_value("compile.fallback.bad_label");
  report.metric("fallbacks", static_cast<double>(fallbacks));
  report.metric("all_compiled", ok && fallbacks == 0 ? 1.0 : 0.0);
  if (fallbacks != 0) {
    std::cerr << "perf_compile: " << fallbacks
              << " fallback(s) — paper algebras must all compile\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
