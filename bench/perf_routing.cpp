// EXP-PERF — scaling of the generic routing algorithms with graph size and
// algebra composition depth (google-benchmark).
#include <benchmark/benchmark.h>

#include "bench_util.hpp"

#include "mrt/algebra/static_algebra.hpp"
#include "mrt/algebra/static_dijkstra.hpp"
#include "mrt/compile/engine.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/bellman.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/closure.hpp"
#include "mrt/routing/kbest.hpp"
#include "mrt/routing/minset.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

using bench::stacked;
using bench::stacked_origin;

void BM_Dijkstra(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  const OrderTransform alg = stacked(depth);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  const Value origin = stacked_origin(depth);
  for (auto _ : state) {
    Routing r = dijkstra(alg, net, 0, origin);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Dijkstra)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

// Boxed-vs-compiled pair for BM_Dijkstra: same graphs, same algebra stack,
// flat kernels via the WeightEngine seam.
void BM_DijkstraCompiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int depth = static_cast<int>(state.range(1));
  const OrderTransform alg = stacked(depth);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  const Value origin = stacked_origin(depth);
  const compile::WeightEngine eng(alg);
  const compile::CompiledNet cn = compile::CompiledNet::make(eng, net);
  for (auto _ : state) {
    Routing r = dijkstra(alg, net, 0, origin, cn.ok() ? &cn : nullptr);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DijkstraCompiled)
    ->ArgsProduct({{16, 64, 256}, {1, 2, 4}})
    ->Unit(benchmark::kMicrosecond);

void BM_BellmanSync(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OrderTransform alg = stacked(2);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  const Value origin = stacked_origin(2);
  for (auto _ : state) {
    BellmanResult r = bellman_sync(alg, net, 0, origin);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BellmanSync)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

void BM_BellmanSyncCompiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OrderTransform alg = stacked(2);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  const Value origin = stacked_origin(2);
  const compile::WeightEngine eng(alg);
  const compile::CompiledNet cn = compile::CompiledNet::make(eng, net);
  for (auto _ : state) {
    BellmanResult r = bellman_sync(alg, net, 0, origin, {},
                                   cn.ok() ? &cn : nullptr);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BellmanSyncCompiled)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

void BM_MinSetBellman(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // Genuinely partial order: subsets with monotone mask-or functions.
  const OrderTransform alg{"sub", ord_subset_bits(3),
                           fam_table("or", 8,
                                     {{1, 1, 3, 3, 5, 5, 7, 7},
                                      {2, 3, 2, 3, 6, 7, 6, 7},
                                      {4, 5, 6, 7, 4, 5, 6, 7}}),
                           {}};
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, n), rng);
  for (auto _ : state) {
    MinSetResult r = minset_bellman(alg, net, 0, Value::integer(0));
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MinSetBellman)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_PathVectorSim(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OrderTransform alg = ot_shortest_path(5);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimOptions opts;
    opts.seed = seed++;
    PathVectorSim sim(alg, net, 0, Value::integer(0), opts);
    SimResult r = sim.run();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PathVectorSim)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_PathVectorSimCompiled(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OrderTransform alg = ot_shortest_path(5);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  const compile::WeightEngine eng(alg);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimOptions opts;
    opts.seed = seed++;
    PathVectorSim sim(alg, net, 0, Value::integer(0), opts, &eng);
    SimResult r = sim.run();
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_PathVectorSimCompiled)->Arg(16)->Arg(64)->Unit(
    benchmark::kMicrosecond);

// The static-vs-dynamic ablation: the same (delay, bandwidth) lex algebra,
// compile-time composed vs runtime-composed, on identical topologies.
void BM_StaticDijkstra(benchmark::State& state) {
  using SpBw = alg::Lex<alg::ShortestPath, alg::WidestPath>;
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  Digraph g = random_connected(rng, n, 2 * n);
  std::vector<SpBw::label_type> labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back({static_cast<std::uint32_t>(rng.range(1, 6)),
                      static_cast<std::uint32_t>(rng.range(0, 6))});
  }
  const SpBw::value_type origin{0, alg::WidestPath::kUnlimited};
  for (auto _ : state) {
    auto r = alg::dijkstra<SpBw>(g, labels, 0, origin);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StaticDijkstra)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

void BM_DynamicDijkstraSameAlgebra(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const OrderTransform alg = lex(ot_shortest_path(6), ot_widest_path(6));
  Rng rng(42);
  Digraph g = random_connected(rng, n, 2 * n);
  ValueVec labels;
  for (int id = 0; id < g.num_arcs(); ++id) {
    labels.push_back(Value::pair(Value::integer(rng.range(1, 6)),
                                 Value::integer(rng.range(0, 6))));
  }
  LabeledGraph net(std::move(g), std::move(labels));
  const Value origin = Value::pair(Value::integer(0), Value::inf());
  for (auto _ : state) {
    Routing r = dijkstra(alg, net, 0, origin);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DynamicDijkstraSameAlgebra)->Arg(16)->Arg(64)->Arg(256)->Unit(
    benchmark::kMicrosecond);

void BM_KBestBellman(benchmark::State& state) {
  const int n = 32;
  const int k = static_cast<int>(state.range(0));
  const OrderTransform alg = ot_shortest_path(5);
  Rng rng(42);
  LabeledGraph net = label_randomly(alg, random_connected(rng, n, 2 * n), rng);
  for (auto _ : state) {
    KBestResult r = kbest_bellman(alg, net, 0, Value::integer(0), k);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_KBestBellman)->Arg(1)->Arg(4)->Arg(16)->Unit(
    benchmark::kMicrosecond);

void BM_KleeneClosure(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Bisemigroup sp = bs_shortest_path();
  Rng rng(42);
  Digraph g = random_connected(rng, n, 2 * n);
  ValueVec w;
  for (int id = 0; id < g.num_arcs(); ++id) {
    w.push_back(Value::integer(rng.range(1, 9)));
  }
  const WeightMatrix a = arc_matrix(sp, g, w);
  for (auto _ : state) {
    ClosureResult r = kleene_closure(sp, a);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_KleeneClosure)->Arg(16)->Arg(48)->Unit(benchmark::kMicrosecond);

void BM_LexApply(benchmark::State& state) {
  // Raw cost of one function application at composition depth d.
  const int depth = static_cast<int>(state.range(0));
  const OrderTransform alg = stacked(depth);
  Rng rng(7);
  const ValueVec labels = alg.fns->sample_labels(rng, 64);
  Value v = stacked_origin(depth);
  std::size_t i = 0;
  for (auto _ : state) {
    v = alg.fns->apply(labels[i++ % labels.size()], v);
    benchmark::DoNotOptimize(v);
    if (i % 64 == 0) v = stacked_origin(depth);  // avoid unbounded growth
  }
}
BENCHMARK(BM_LexApply)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LexCompare(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  const OrderTransform alg = stacked(depth);
  Rng rng(7);
  const ValueVec xs = alg.ord->sample(rng, 128);
  std::size_t i = 0;
  for (auto _ : state) {
    bool r = alg.ord->leq(xs[i % 128], xs[(i + 1) % 128]);
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_LexCompare)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace mrt

// Hand-rolled BENCHMARK_MAIN(): mrt::bench::JsonReport first strips the
// --json flag (google-benchmark rejects flags it does not know) and, on exit,
// dumps wall time plus the obs counters the instrumented solvers accumulated.
int main(int argc, char** argv) {
  mrt::bench::JsonReport report("perf_routing", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
