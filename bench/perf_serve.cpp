// EXP-SERVE — sustained delta throughput and per-update latency of the
// routing daemon.
//
// One workload, measured the way a deployment would run it: a 512-node
// Gao–Rexford internet bound warm across 16 destination columns, then a
// ≥10k-delta replay log (alternating single-arc down/up flaps, so every
// delta invalidates at least one arc) drained through serve::Daemon from
// the framed wire format. The drain is timed end to end — decode, warm
// RibSolver::update, route-change diff — giving the two headline numbers
// scripts/bench_json.sh gates into BENCH_serve.json:
//
//   serve.deltas_per_sec       sustained drain throughput (floor: 300/s;
//                              ~1000/s on the reference machine)
//   serve.p99_update_ns        p99 of the serve.update_ns histogram, i.e.
//                              the tail latency of one warm update
//                              (ceiling: 10 ms; ~2 ms on the reference
//                              machine)
//
// Every timed update is asserted warm (serve.warm pinned to 1): the bench
// aborts if any delta fell back to a cold solve or changed no arc, so the
// gate can never pass on accidentally-cold numbers. After the drain the
// daemon's table is byte-compared against one concatenated batch update and
// a cold re-solve of the end state (serve.stream_batch_identical pinned to
// 1) — the stream≡batch≡cold contract under the same bytes the throughput
// number came from.
#include "bench_util.hpp"

#include <cstdint>
#include <vector>

#include "mrt/dyn/solver.hpp"
#include "mrt/obs/obs.hpp"
#include "mrt/rib/rib.hpp"
#include "mrt/serve/serve.hpp"
#include "mrt/sim/scenario.hpp"
#include "mrt/stream/stream.hpp"
#include "mrt/stream/wire.hpp"

namespace mrt {
namespace {

bool same_routing(const Routing& a, const Routing& b) {
  if (a.weight.size() != b.weight.size()) return false;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    if (a.weight[v].has_value() != b.weight[v].has_value()) return false;
    if (a.weight[v] && !(*a.weight[v] == *b.weight[v])) return false;
    if (a.next_arc[v] != b.next_arc[v]) return false;
  }
  return true;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

std::vector<int> spread_dests(int n, int k) {
  std::vector<int> d;
  for (int i = 0; i < k; ++i) {
    d.push_back(static_cast<int>((static_cast<long>(i) * n) / k));
  }
  return d;
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("perf_serve", argc, argv);
  bench::banner("EXP-SERVE: daemon drain throughput and p99 update latency");

  // The latency histogram must record regardless of how the binary was
  // invoked; the p99 gate reads it back from the registry.
  obs::set_enabled(true);
  obs::registry().reset();

  Rng rng(0x5E18);
  const Scenario sc = gao_rexford_hierarchy(rng, 512, 384);
  const int m = sc.net.graph().num_arcs();
  const std::vector<int> dests = spread_dests(sc.net.num_nodes(), 16);

  // ≥10k single-op deltas: down/up pairs over a deterministic arc cycle, so
  // every update invalidates exactly one arc against warm state.
  const int kDeltas = 12000;
  std::vector<dyn::TopologyDelta> log;
  log.reserve(kDeltas);
  for (int i = 0; i < kDeltas; ++i) {
    const int arc = ((i / 2) * 7919) % m;
    dyn::TopologyDelta d;
    if (i % 2 == 0) {
      d.arc_down(arc);
    } else {
      d.arc_up(arc);
    }
    log.push_back(std::move(d));
  }
  const std::vector<std::uint8_t> bytes = stream::encode_stream(log);

  // Compiled flat kernels, as a deployment would run: the daemon forwards
  // the engine to its RibSolver; the references below get the same one.
  const compile::WeightEngine eng(sc.alg);
  serve::Daemon daemon(sc.alg, &eng);
  daemon.start(sc.net, dests, sc.origin);
  report.metric("serve.flat", daemon.rib().batched_flat() ? 1.0 : 0.0);

  // Timed drain: decode + warm update + route-change diff per delta, with a
  // warmth assertion inside the loop (O(1) per update — reads the stats the
  // update already produced).
  bool all_warm = true;
  stream::BufferSource src(bytes);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t applied = 0;
  while (std::optional<dyn::TopologyDelta> d = src.next()) {
    daemon.apply(*d);
    const rib::RibStats& st = daemon.rib().last_update();
    if (st.cold || st.changed_arcs == 0) all_warm = false;
    ++applied;
  }
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  bool ok = src.error().empty() && applied == log.size();
  if (!ok) {
    std::cerr << "perf_serve: drain stopped after " << applied << "/"
              << log.size() << " deltas: " << src.error() << "\n";
  }
  if (!all_warm) {
    std::cerr << "perf_serve: a timed update was cold or changed no arc — "
              << "the throughput number is invalid\n";
  }

  const double per_sec = secs > 0.0 ? static_cast<double>(applied) / secs : 0.0;
  const double p99_ns =
      obs::registry().histogram("serve.update_ns").quantile(0.99);

  // stream ≡ batch ≡ cold on the exact bytes just drained.
  dyn::TopologyDelta all;
  for (const dyn::TopologyDelta& d : log) {
    all.ops.insert(all.ops.end(), d.ops.begin(), d.ops.end());
  }
  rib::RibSolver batch(sc.alg, &eng);
  batch.solve(sc.net, dests, sc.origin);
  batch.update(all);
  rib::RibSolver cold(sc.alg, &eng);
  cold.solve(sc.net, dests, sc.origin);
  {
    const bool before = dyn::enabled();
    dyn::set_enabled(false);
    cold.update(all);
    dyn::set_enabled(before);
  }
  bool identical = true;
  for (int c = 0; c < batch.num_columns(); ++c) {
    identical = identical &&
                same_routing(daemon.rib().routing(c), batch.routing(c)) &&
                same_routing(daemon.rib().routing(c), cold.routing(c));
  }
  if (!identical) {
    std::cerr << "perf_serve: stream/batch/cold tables diverged\n";
  }

  const serve::ServeStats& st = daemon.stats();
  Table table({"metric", "value"});
  table.add_row({"deltas drained", std::to_string(applied)});
  table.add_row({"drain seconds", fmt(secs)});
  table.add_row({"deltas/sec", fmt(per_sec)});
  table.add_row({"p99 update (us)", fmt(p99_ns / 1e3)});
  table.add_row({"route changes", std::to_string(st.route_changes)});
  table.add_row({"warm/cold", std::to_string(st.warm_updates) + "/" +
                                  std::to_string(st.cold_updates)});
  std::cout << table;

  report.metric("serve.deltas", static_cast<double>(applied));
  report.metric("serve.deltas_per_sec", per_sec);
  report.metric("serve.p99_update_ns", p99_ns);
  report.metric("serve.warm", all_warm ? 1.0 : 0.0);
  report.metric("serve.stream_batch_identical", identical ? 1.0 : 0.0);

  ok = ok && all_warm && identical;
  return ok ? 0 : 1;
}
