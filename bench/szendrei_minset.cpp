// EXP-SZ — section VI machinery: the ⃗×_ω product restores the saturating
// finite chain as a usable first factor, and the min-set map behaves as a
// Wongseelashote reduction.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/lex.hpp"
#include "mrt/core/translations.hpp"

int main() {
  using namespace mrt;
  Checker chk;

  bench::banner("EXP-SZ: saturating chain as first lex factor (section VI)");
  Table t({"n (chain bound)", "N(chain)", "M(plain lex)", "M(lex_omega)"});
  for (int n : {2, 3, 4, 6}) {
    OrderTransform s = ot_chain_add(n, 1, 2);
    s.props = chk.report(s);
    OrderTransform second = ot_chain_add(2, 0, 1);
    second.props = chk.report(second);
    const OrderTransform plain = lex(s, second);
    const OrderTransform collapsed = lex_omega(s, second);
    t.add_row({std::to_string(n), to_string(s.props.value(Prop::N_L)),
               to_string(chk.prop(plain, Prop::M_L).verdict),
               to_string(chk.prop(collapsed, Prop::M_L).verdict)});
  }
  std::cout << t.render();
  std::cout << "N fails at the saturation point for every n, killing M of\n"
               "the plain product; the omega-collapse absorbs exactly those\n"
               "collisions and M returns — the paper's section VI claim.\n";

  bench::banner("EXP-SZ: semigroup-level Szendrei product (literal def.)");
  {
    auto s = sg_chain_plus(3);
    auto lom = lex_omega_semigroup(s, sg_chain_min(2));
    Table q({"check", "result"});
    const bool absorbing =
        lom->op(Value::omega(),
                Value::pair(Value::integer(1), Value::integer(0)))
            .is_omega();
    const bool collapses =
        lom->op(Value::pair(Value::integer(2), Value::integer(0)),
                Value::pair(Value::integer(1), Value::integer(1)))
            .is_omega();
    q.add_row({"omega absorbing", absorbing ? "yes" : "no"});
    q.add_row({"collapse when s1+s2 saturates", collapses ? "yes" : "no"});
    q.add_row({"assoc (checker)",
               to_string(chk.semigroup_prop(*lom, Prop::Assoc).verdict)});
    q.add_row({"comm (checker)",
               to_string(chk.semigroup_prop(*lom, Prop::Comm).verdict)});
    std::cout << q.render();
  }

  bench::banner("EXP-SZ: min-set translation round trip");
  {
    // Order transform → semigroup transform over min-sets: laws measured.
    OrderTransform ot{"sub", ord_subset_bits(2),
                      fam_table("or", 4, {{1, 1, 3, 3}, {2, 3, 2, 3}}), {}};
    const SemigroupTransform st = min_set_transform(ot);
    Table q({"law of minsets(sub)", "verdict", "witness/coverage"});
    for (Prop p : {Prop::Assoc, Prop::Comm, Prop::Idem, Prop::HasIdentity,
                   Prop::Selective, Prop::M_L}) {
      const CheckResult r = chk.prop(st, p);
      q.add_row({to_string(p), to_string(r.verdict), r.detail.substr(0, 44)});
    }
    std::cout << q.render();
    std::cout << "The min-set summarization is a commutative idempotent\n"
               "monoid (NOT selective: genuine multipath), and the lifted\n"
               "functions are homomorphisms because the base functions are\n"
               "monotone — the Gondran-Minoux condition for global optima.\n";
  }
  return 0;
}
