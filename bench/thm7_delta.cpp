// EXP-T7 — Theorem 7: the OSPF-like Δ operator keeps the Thm 4 side
// condition that the scoped product removed:
//
//   M(S Δ T)  ⟺ M(S) ∧ M(T) ∧ (N(S) ∨ C(T))
//   ND(S Δ T) ⟺ I(S) ∧ ND(T)      (⊤-free S)
//   I(S Δ T)  ⟺ I(S) ∧ I(T)       (⊤-free S, T)
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {
using bench::Census;
constexpr int kSamples = 1500;

// All seven censuses plus the eligibility count, merged across chunks.
struct T7Acc {
  Census m_exact, m_engine, nd_topfree, inc_topfree, m_without_side;
  Census nd_corrected, inc_corrected;
  long eligible = 0;
  void merge(const T7Acc& o) {
    m_exact.merge(o.m_exact);
    m_engine.merge(o.m_engine);
    nd_topfree.merge(o.nd_topfree);
    inc_topfree.merge(o.inc_topfree);
    m_without_side.merge(o.m_without_side);
    nd_corrected.merge(o.nd_corrected);
    inc_corrected.merge(o.inc_corrected);
    eligible += o.eligible;
  }
};
}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;

  const T7Acc acc = bench::parallel_sweep<T7Acc>(
      0xDE17A'BE, kSamples, [](Rng& rng, T7Acc& out) {
        Checker chk;
        OrderTransform s = random_order_transform(rng);
        OrderTransform t = random_order_transform(rng);
        const OrderShape ss = probe_shape(*s.ord);
        const OrderShape ts = probe_shape(*t.ord);
        if (ss.multi_element != Tri::True || ts.multi_class != Tri::True) {
          return;
        }
        ++out.eligible;
        s.props = chk.report(s);
        t.props = chk.report(t);
        const OrderTransform dl = delta(s, t);
        const Tri o_m = chk.prop(dl, Prop::M_L).verdict;

        out.m_exact.tally(
            tri_and(
                tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)),
                tri_or(s.props.value(Prop::N_L), t.props.value(Prop::C_L))),
            o_m);
        out.m_engine.tally(dl.props.value(Prop::M_L), o_m);
        // Without the side condition the rule would be unsound — measure it.
        out.m_without_side.tally(
            tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)), o_m);

        if (s.props.value(Prop::HasTop) == Tri::False) {
          const Tri o_nd = chk.prop(dl, Prop::ND_L).verdict;
          out.nd_topfree.tally(
              tri_and(s.props.value(Prop::Inc_L), t.props.value(Prop::ND_L)),
              o_nd);
          // Corrected line (measured finding): unlike the scoped product, Δ's
          // first arm is lex(S, T), so the ND(S)&ND(T) disjunct survives:
          //    ND(S Δ T) ⟺ ND(S) ∧ ND(T).
          out.nd_corrected.tally(
              tri_and(s.props.value(Prop::ND_L), t.props.value(Prop::ND_L)),
              o_nd);
          if (t.props.value(Prop::HasTop) == Tri::False) {
            const Tri o_inc = chk.prop(dl, Prop::Inc_L).verdict;
            out.inc_topfree.tally(
                tri_and(s.props.value(Prop::Inc_L),
                        t.props.value(Prop::Inc_L)),
                o_inc);
            // Corrected: I(S Δ T) ⟺ ND(S) ∧ I(T).
            out.inc_corrected.tally(
                tri_and(s.props.value(Prop::ND_L),
                        t.props.value(Prop::Inc_L)),
                o_inc);
          }
        }
      });

  bench::banner("EXP-T7: Theorem 7 — Delta (OSPF-area-like) operator");
  std::cout << "eligible samples: " << acc.eligible << "\n";
  Table t = bench::census_table();
  t.add_row(acc.m_exact.row("M <=> M&M&(N(S)|C(T))"));
  t.add_row(acc.m_engine.row("engine-derived M"));
  t.add_row(acc.m_without_side.row("M&M only (side condition dropped!)"));
  t.add_row(acc.nd_topfree.row("ND as published: I(S)&ND(T) (top-free S)"));
  t.add_row(acc.nd_corrected.row("ND corrected: ND(S)&ND(T)"));
  t.add_row(acc.inc_topfree.row("I as published: I(S)&I(T) (top-free S,T)"));
  t.add_row(acc.inc_corrected.row("I corrected: ND(S)&I(T)"));
  std::cout << t.render();
  std::cout << "The third row's UNSOUND column shows how often Delta without\n"
               "the N(S)|C(T) side condition over-claims — the measured gap\n"
               "between Theorem 6 (scoped) and Theorem 7 (Delta).\n"
               "The 'as published' ND/I lines under-claim (miss column):\n"
               "deriving Delta through its own definition gives\n"
               "ND(SDT) <=> ND(S)&ND(T) and I(SDT) <=> ND(S)&I(T); the\n"
               "published lines appear to be copied from Theorem 6, where\n"
               "left(T) kills the extra disjunct. The corrected lines agree\n"
               "with the oracle exactly.\n";
  return 0;
}
