// EXP-KB — the section VI outlook, implemented: k-best routing via the
// reduction idea. Measures (a) the r_k reduction-axiom census, locating
// axiom 3's validity at exactly the M ∧ N functions, and (b) k-best Bellman
// on random networks: convergence, certification, and Dijkstra agreement on
// the best weight.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/kbest.hpp"

int main() {
  using namespace mrt;
  Checker chk;
  Rng rng(0x6BE5);

  bench::banner("EXP-KB: r_k reduction axioms vs function properties");
  {
    // Random monotone functions {0..7} → {0..15}, split by injectivity (N).
    // (Into a larger chain: on a finite chain the only injective monotone
    // *endo*function is the identity — saturation strikes again.)
    long inj_ok = 0, inj_total = 0, noninj_ok = 0, noninj_total = 0;
    auto ord = ord_chain(15);
    ValueVec elems;
    for (int i = 0; i <= 7; ++i) elems.push_back(Value::integer(i));
    for (int trial = 0; trial < 4000; ++trial) {
      // Nondecreasing steps of 0..2 (may repeat) or 1..2 (injective).
      const bool force_injective = rng.chance(0.5);
      std::vector<int> f(8);
      int cur = static_cast<int>(rng.range(0, 1));
      for (int i = 0; i < 8; ++i) {
        cur = std::min<int>(
            15, cur + static_cast<int>(rng.range(force_injective ? 1 : 0, 2)));
        f[static_cast<std::size_t>(i)] = cur;
      }
      bool injective = true;
      for (int i = 1; i < 8; ++i) {
        injective = injective &&
                    f[static_cast<std::size_t>(i)] !=
                        f[static_cast<std::size_t>(i - 1)];
      }
      // Random set A and k; test axiom 3.
      const int k = 1 + static_cast<int>(rng.range(0, 2));
      ValueVec a;
      for (const Value& v : elems) {
        if (rng.chance(0.5)) a.push_back(v);
      }
      auto image = [&](const ValueVec& xs) {
        ValueVec out;
        for (const Value& x : xs) {
          out.push_back(Value::integer(
              f[static_cast<std::size_t>(x.as_int())]));
        }
        return out;
      };
      const bool holds =
          k_best(*ord, image(a), k) == k_best(*ord, image(k_best(*ord, a, k)), k);
      if (injective) {
        ++inj_total;
        inj_ok += holds ? 1 : 0;
      } else {
        ++noninj_total;
        noninj_ok += holds ? 1 : 0;
      }
    }
    Table t({"function class", "axiom-3 holds", "samples"});
    t.add_row({"monotone + injective (M & N)", std::to_string(inj_ok),
               std::to_string(inj_total)});
    t.add_row({"monotone, non-injective (M, not N)", std::to_string(noninj_ok),
               std::to_string(noninj_total)});
    std::cout << t.render();
    std::cout << "Axiom 3 holds for every M&N function and fails for some\n"
                 "non-injective ones: k-best needs exactly the properties\n"
                 "Figure 2 already names.\n";
  }

  bench::banner("EXP-KB: k-best Bellman on random networks");
  {
    const OrderTransform sp = ot_shortest_path(5);
    Table t({"k", "runs", "converged", "certified", "best = Dijkstra",
             "mean iterations"});
    for (int k : {1, 2, 4, 8}) {
      int runs = 0, conv = 0, cert = 0, agree = 0;
      long iters = 0;
      for (int trial = 0; trial < 25; ++trial) {
        Digraph g = random_connected(rng, 10, 7);
        LabeledGraph net = label_randomly(sp, std::move(g), rng);
        const KBestResult kb = kbest_bellman(sp, net, 0, Value::integer(0), k);
        ++runs;
        conv += kb.converged ? 1 : 0;
        iters += kb.iterations;
        if (!kb.converged) continue;
        cert += kbest_certified(sp, net, 0, Value::integer(0), kb) ? 1 : 0;
        const Routing d = dijkstra(sp, net, 0, Value::integer(0));
        bool all = true;
        for (int v = 0; v < net.num_nodes(); ++v) {
          all = all && !kb.weights[static_cast<std::size_t>(v)].empty() &&
                kb.weights[static_cast<std::size_t>(v)].front() ==
                    *d.weight[static_cast<std::size_t>(v)];
        }
        agree += all ? 1 : 0;
      }
      t.add_row({std::to_string(k), std::to_string(runs),
                 std::to_string(conv) + "/" + std::to_string(runs),
                 std::to_string(cert) + "/" + std::to_string(conv),
                 std::to_string(agree) + "/" + std::to_string(conv),
                 std::to_string(iters / runs)});
    }
    std::cout << t.render();
  }
  return 0;
}
