// EXP-DYN — delta-aware incremental recomputation vs cold re-solves.
//
// Two workloads behind one report:
//   1. single-flap updates on stacked-lex random networks: a solver absorbs
//      an arc_down/arc_up pair either warm (MRT_DYN on, affected-set
//      recompute) or cold (toggle off, full masked re-solve). Results are
//      byte-compared before anything is timed — a divergence aborts with
//      exit 1.
//   2. a flap-heavy chaos campaign run A/B with the toggle off and on: the
//      verdict tables must be byte-identical, and the warm run's wall clock
//      is the headline speedup that scripts/bench_json.sh gates into
//      BENCH_dyn.json.
#include "bench_util.hpp"

#include "mrt/chaos/campaign.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/dyn/solver.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

/// Best-of-`reps` wall time of `f`, in milliseconds.
template <typename F>
double time_ms(int reps, F&& f) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    f();
    const double ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

bool same_routing(const Routing& a, const Routing& b) {
  if (a.weight.size() != b.weight.size()) return false;
  for (std::size_t v = 0; v < a.weight.size(); ++v) {
    if (a.weight[v].has_value() != b.weight[v].has_value()) return false;
    if (a.weight[v] && !(*a.weight[v] == *b.weight[v])) return false;
    if (a.next_arc[v] != b.next_arc[v]) return false;
  }
  return true;
}

/// Runs `n_flaps` arc_down/arc_up pairs through `s`, with the dyn toggle
/// forced to `warm`. The arcs cycle deterministically over the network.
void flap_loop(Solver& s, int n_flaps, bool warm) {
  const bool before = dyn::enabled();
  dyn::set_enabled(warm);
  const int m = s.net().graph().num_arcs();
  for (int i = 0; i < n_flaps; ++i) {
    const int arc = (i * 7919) % m;
    s.update(dyn::TopologyDelta{}.arc_down(arc));
    s.update(dyn::TopologyDelta{}.arc_up(arc));
  }
  dyn::set_enabled(before);
}

const char* kind_name(dyn::EngineKind k) {
  return k == dyn::EngineKind::Dijkstra ? "dijkstra" : "bellman";
}

chaos::CampaignScenario flap_heavy_scenario() {
  Rng rng(0x1C4A);
  Scenario sc = random_scenario(ot_chain_add(192, 1, 3), Value::integer(0),
                                rng, 192, 64);
  chaos::CampaignScenario c;
  c.name = "flap_heavy_chain";
  c.alg = sc.alg;
  c.net = sc.net;
  c.dest = sc.dest;
  c.origin = sc.origin;
  c.sim.drop_top_routes = true;  // the saturated top is "unreachable"
  c.faults.max_faults = 12;      // flap-heavy: ~2× the headline fault load
  c.faults.min_faults = 4;
  c.global = chaos::GlobalCheck::On;
  return c;
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("perf_dyn", argc, argv);
  bench::banner("EXP-DYN: incremental updates vs cold re-solves");

  Table table({"workload", "cold_ms", "warm_ms", "speedup", "affected%"});
  bool ok = true;
  const int kReps = 5;
  const int kFlaps = 64;

  // --- single-flap updates, stacked-lex depths × both engines ------------
  for (int depth : {1, 3}) {
    const OrderTransform alg = bench::stacked(depth);
    const Value origin = bench::stacked_origin(depth);
    Rng rng(42);
    LabeledGraph net =
        label_randomly(alg, random_connected(rng, 192, 384), rng);

    for (dyn::EngineKind kind :
         {dyn::EngineKind::Dijkstra, dyn::EngineKind::Bellman}) {
      auto warm = dyn::make_solver(kind, alg);
      auto cold = dyn::make_solver(kind, alg);
      warm->solve(net, 0, origin);
      cold->solve(net, 0, origin);

      // Differential check before timing: every flap must agree byte-wise.
      double affected = 0.0;
      long warm_updates = 0;
      for (int i = 0; i < 16; ++i) {
        const int arc = (i * 7919) % net.graph().num_arcs();
        for (const bool down : {true, false}) {
          dyn::TopologyDelta d;
          if (down) {
            d.arc_down(arc);
          } else {
            d.arc_up(arc);
          }
          warm->update(d);
          dyn::set_enabled(false);
          cold->update(d);
          dyn::set_enabled(true);
          if (!same_routing(warm->routing(), cold->routing())) {
            std::cerr << "perf_dyn: warm update diverged from cold ("
                      << kind_name(kind) << " depth " << depth << " arc "
                      << arc << ")\n";
            ok = false;
          }
          affected += warm->last_update().affected_fraction();
          ++warm_updates;
        }
      }
      const double mean_affected =
          100.0 * affected / static_cast<double>(warm_updates);

      const double cold_ms =
          time_ms(kReps, [&] { flap_loop(*cold, kFlaps, false); });
      const double warm_ms =
          time_ms(kReps, [&] { flap_loop(*warm, kFlaps, true); });
      const std::string name =
          std::string(kind_name(kind)) + ".depth" + std::to_string(depth);
      report.metric("speedup.update." + name, cold_ms / warm_ms);
      report.metric("affected_pct." + name, mean_affected);
      table.add_row({"flap " + name, fmt(cold_ms), fmt(warm_ms),
                     fmt(cold_ms / warm_ms), fmt(mean_affected)});
    }
  }

  // --- flap-heavy chaos campaign, toggle off vs on -----------------------
  {
    const std::vector<chaos::CampaignScenario> scs = {flap_heavy_scenario()};
    chaos::CampaignConfig cfg;
    cfg.seed = 0xD9A;
    cfg.runs_per_scenario = 200;

    std::string table_cold, table_warm;
    dyn::set_enabled(false);
    const double chaos_cold = time_ms(3, [&] {
      table_cold = chaos::run_campaign(scs, cfg).verdict_table();
    });
    dyn::set_enabled(true);
    const double chaos_warm = time_ms(3, [&] {
      table_warm = chaos::run_campaign(scs, cfg).verdict_table();
    });
    if (table_cold != table_warm) {
      std::cerr << "perf_dyn: chaos verdict table depends on the dyn toggle\n"
                << table_cold << "\n--- vs ---\n" << table_warm;
      ok = false;
    }
    // The same campaign with the global-truth oracle disabled isolates the
    // fixed simulation cost; subtracting it gives the wall time of the truth
    // checks themselves — the component the dyn seam replaces, and a far
    // steadier gate than the end-to-end ratio (where the simulator noise
    // floor is on the order of the saving).
    std::vector<chaos::CampaignScenario> no_truth = scs;
    for (auto& c : no_truth) c.global = chaos::GlobalCheck::Off;
    const double chaos_base = time_ms(3, [&] {
      const chaos::CampaignReport r = chaos::run_campaign(no_truth, cfg);
      (void)r;
    });
    const double check_cold = chaos_cold - chaos_base;
    const double check_warm = chaos_warm - chaos_base;
    report.metric("speedup.chaos_flaps", chaos_cold / chaos_warm);
    report.metric("speedup.chaos_truth_check",
                  check_warm > 0.0 ? check_cold / check_warm : 1e9);
    report.metric("chaos_verdicts_identical", table_cold == table_warm);
    table.add_row({"chaos flap-heavy campaign", fmt(chaos_cold),
                   fmt(chaos_warm), fmt(chaos_cold / chaos_warm), "-"});
    table.add_row({"chaos truth checks alone", fmt(check_cold),
                   fmt(check_warm), fmt(check_cold / check_warm), "-"});
  }

  std::cout << table;
  report.metric("identical", ok ? 1.0 : 0.0);
  if (!ok) {
    std::cerr << "perf_dyn: differential checks failed\n";
  }
  return ok ? 0 : 1;
}
