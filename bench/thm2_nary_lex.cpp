// EXP-T2 — Theorem 2: the n-ary lexicographic semigroup product is defined
// iff the factors form (selective)* · free · (monoid)*, and is then
// commutative and idempotent. The harness measures the definedness frontier
// by exhaustively applying ⊕ over random factor arrangements.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/lex.hpp"

namespace mrt {
namespace {

enum class FactorKind { Selective, Free, Monoid };

SemigroupPtr make_factor(Rng& rng, FactorKind k) {
  switch (k) {
    case FactorKind::Selective:
      return random_chain_semilattice(rng, 3);
    case FactorKind::Free: {
      // Non-selective, and strip any identity by dropping the ground set:
      // intersection-closed family without the full mask.
      for (int tries = 0; tries < 50; ++tries) {
        SemigroupPtr s = random_semilattice(rng, 2, false);
        Checker chk;
        if (chk.semigroup_prop(*s, Prop::Selective).verdict == Tri::False &&
            chk.semigroup_prop(*s, Prop::HasIdentity).verdict == Tri::False) {
          return s;
        }
      }
      // Deterministic fallback: {0=∅, 1={a}, 2={b}} meet-semilattice.
      return sg_table("free3", {{0, 0, 0}, {0, 1, 0}, {0, 0, 2}});
    }
    case FactorKind::Monoid:
      return random_semilattice(rng, 2, true);
  }
  return nullptr;
}

// Per-arrangement tally, merged across parallel_sweep chunks.
struct DefAcc {
  long defined = 0;
  long laws = 0;
  void merge(const DefAcc& o) {
    defined += o.defined;
    laws += o.laws;
  }
};

// Exhaustively applies ⊕; reports whether any fourth-case hole was hit.
bool fully_defined(const Semigroup& s) {
  auto enumd = s.enumerate();
  if (!enumd) return true;
  for (const Value& a : *enumd) {
    for (const Value& b : *enumd) {
      try {
        (void)s.op(a, b);
      } catch (const std::logic_error&) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;

  bench::banner("EXP-T2: Theorem 2 — n-ary definedness frontier");
  Table t({"arrangement", "trials", "always defined", "comm+idem when defined"});

  struct Arrangement {
    const char* name;
    std::vector<FactorKind> ks;
    bool expect_defined;
  };
  const std::vector<Arrangement> arrangements = {
      {"sel . sel . monoid", {FactorKind::Selective, FactorKind::Selective,
                              FactorKind::Monoid}, true},
      {"sel . free . monoid", {FactorKind::Selective, FactorKind::Free,
                               FactorKind::Monoid}, true},
      {"sel . monoid . monoid", {FactorKind::Selective, FactorKind::Monoid,
                                 FactorKind::Monoid}, true},
      {"free . monoid . monoid", {FactorKind::Free, FactorKind::Monoid,
                                  FactorKind::Monoid}, true},
      {"free . free . monoid (two free!)", {FactorKind::Free, FactorKind::Free,
                                            FactorKind::Monoid}, false},
      {"sel . free . free", {FactorKind::Selective, FactorKind::Free,
                             FactorKind::Free}, false},
      {"monoid-after-free violated", {FactorKind::Free, FactorKind::Free,
                                      FactorKind::Free}, false},
  };

  const int trials = 40;
  for (std::size_t ai = 0; ai < arrangements.size(); ++ai) {
    const Arrangement& arr = arrangements[ai];
    // Trials parallelize per-sample; each arrangement derives its own base
    // seed so the table is independent of both thread count and row order.
    const DefAcc acc = bench::parallel_sweep<DefAcc>(
        par::mix_seed(0x7012, ai), trials, [&arr](Rng& rng, DefAcc& a) {
          Checker chk;
          SemigroupPtr p = make_factor(rng, arr.ks[0]);
          for (std::size_t k = 1; k < arr.ks.size(); ++k) {
            p = lex_semigroup(p, make_factor(rng, arr.ks[k]));
          }
          if (fully_defined(*p)) {
            ++a.defined;
            const bool ok =
                chk.semigroup_prop(*p, Prop::Comm).verdict == Tri::True &&
                chk.semigroup_prop(*p, Prop::Idem).verdict == Tri::True &&
                chk.semigroup_prop(*p, Prop::Assoc).verdict == Tri::True;
            a.laws += ok ? 1 : 0;
          }
        });
    t.add_row({arr.name, std::to_string(trials),
               std::to_string(acc.defined) + "/" + std::to_string(trials) +
                   (arr.expect_defined ? " (thm2: all)" : " (thm2: not all)"),
               std::to_string(acc.laws) + "/" + std::to_string(acc.defined)});
  }
  std::cout << t.render();
  std::cout << "Theorem 2 reproduced: arrangements with a selective prefix,\n"
               "one free factor and a monoid suffix are always defined and\n"
               "commutative+idempotent; arrangements with two free factors\n"
               "(or a non-monoid after the free slot) hit undefined cases.\n";
  return 0;
}
