// EXP-F3 — Figure 3 / Theorem 5: the exact local-optima rules
//     ND(S ⃗× T) ⟺ I(S) ∨ (ND(S) ∧ ND(T))
//     I(S ⃗× T)  ⟺ I(S) ∨ (ND(S) ∧ I(T))
// measured per quadrant, plus the ⊤-subtlety census: on plain ⃗× with a
// topped first factor the literal Fig. 3 rules over-claim (UNSOUND > 0 in
// the "literal" rows — that is the measured finding), while the refined
// ⊤-aware rules and the ⃗×_ω reading stay exact.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

using bench::Census;

constexpr int kSamples = 1500;

struct OtCensus {
  Census refined_nd, refined_inc;
  Census literal_nd, literal_inc;
  Census literal_topfree_nd, literal_topfree_inc;
  Census omega_nd, omega_inc;
  long topped_first = 0;
};

OtCensus sweep_ot() {
  Checker chk;
  OtCensus out;
  Rng rng(0xF16'3'07);
  for (int i = 0; i < kSamples; ++i) {
    OrderTransform s = random_order_transform(rng);
    OrderTransform t = random_order_transform(rng);
    s.props = chk.report(s);
    t.props = chk.report(t);
    const OrderTransform p = lex(s, t);
    const Tri o_nd = chk.prop(p, Prop::ND_L).verdict;
    const Tri o_inc = chk.prop(p, Prop::Inc_L).verdict;

    out.refined_nd.tally(p.props.value(Prop::ND_L), o_nd);
    out.refined_inc.tally(p.props.value(Prop::Inc_L), o_inc);
    out.literal_nd.tally(paper_rule_nd_lex(s.props, t.props), o_nd);
    out.literal_inc.tally(paper_rule_inc_lex(s.props, t.props), o_inc);

    const bool topfree = s.props.value(Prop::HasTop) == Tri::False;
    if (!topfree) ++out.topped_first;
    if (topfree) {
      out.literal_topfree_nd.tally(paper_rule_nd_lex(s.props, t.props), o_nd);
      if (t.props.value(Prop::HasTop) == Tri::False) {
        out.literal_topfree_inc.tally(paper_rule_inc_lex(s.props, t.props),
                                      o_inc);
      }
    }

    // The ⃗×_ω reading: collapse S's top; Fig. 3 rules with the Sobrinho
    // conventions (T(S) holds, T ⊤-free for the I rule).
    if (s.ord->has_top() && s.props.value(Prop::TFix_L) == Tri::True) {
      const OrderTransform w = lex_omega(s, t);
      out.omega_nd.tally(paper_rule_nd_lex(s.props, t.props),
                         chk.prop(w, Prop::ND_L).verdict);
      if (t.props.value(Prop::HasTop) == Tri::False) {
        out.omega_inc.tally(paper_rule_inc_lex(s.props, t.props),
                            chk.prop(w, Prop::Inc_L).verdict);
      }
    }
  }
  return out;
}

Census sweep_st(Prop which) {
  Checker chk;
  Census c;
  Rng rng(0xF16'3'57);
  for (int i = 0; i < kSamples; ++i) {
    SemigroupTransform s = random_semigroup_transform(rng);
    SemigroupTransform t = random_semigroup_transform(rng);
    if (!t.add->identity()) continue;
    s.props = chk.report(s);
    t.props = chk.report(t);
    const SemigroupTransform p = lex(s, t);
    c.tally(p.props.value(which), chk.prop(p, which).verdict);
  }
  return c;
}

Census sweep_bs(Prop which) {
  Checker chk;
  Census c;
  Rng rng(0xF16'3'B5);
  for (int i = 0; i < kSamples; ++i) {
    Bisemigroup s = random_bisemigroup(rng);
    Bisemigroup t = random_bisemigroup(rng);
    if (!t.add->identity()) continue;
    s.props = chk.report(s);
    t.props = chk.report(t);
    const Bisemigroup p = lex(s, t);
    c.tally(p.props.value(which), chk.prop(p, which).verdict);
  }
  return c;
}

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;
  const auto ot = sweep_ot();

  bench::banner("EXP-F3: Thm 5 local-optima rules (order transforms)");
  Table t = bench::census_table();
  t.add_row(ot.refined_nd.row("ND refined (top-aware)"));
  t.add_row(ot.refined_inc.row("I refined (top-aware)"));
  t.add_row(ot.literal_nd.row("ND literal Fig.3, plain lex"));
  t.add_row(ot.literal_inc.row("I literal Fig.3, plain lex"));
  t.add_row(ot.literal_topfree_nd.row("ND literal, top-free S"));
  t.add_row(ot.literal_topfree_inc.row("I literal, top-free S&T"));
  t.add_row(ot.omega_nd.row("ND literal under lex_omega"));
  t.add_row(ot.omega_inc.row("I literal under lex_omega (T top-free)"));
  std::cout << t.render();
  std::cout << "samples with a topped first factor: " << ot.topped_first
            << " — exactly where the literal plain-lex rules over-claim.\n";

  bench::banner("EXP-F3: Thm 5 in the algebraic quadrants (exact as stated)");
  Table t2 = bench::census_table();
  t2.add_row(sweep_st(Prop::ND_L).row("ND semigroup transforms"));
  t2.add_row(sweep_st(Prop::Inc_L).row("I  semigroup transforms"));
  t2.add_row(sweep_bs(Prop::ND_L).row("ND bisemigroups"));
  t2.add_row(sweep_bs(Prop::Inc_L).row("I  bisemigroups"));
  std::cout << t2.render();
  return 0;
}
