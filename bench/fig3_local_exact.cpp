// EXP-F3 — Figure 3 / Theorem 5: the exact local-optima rules
//     ND(S ⃗× T) ⟺ I(S) ∨ (ND(S) ∧ ND(T))
//     I(S ⃗× T)  ⟺ I(S) ∨ (ND(S) ∧ I(T))
// measured per quadrant, plus the ⊤-subtlety census: on plain ⃗× with a
// topped first factor the literal Fig. 3 rules over-claim (UNSOUND > 0 in
// the "literal" rows — that is the measured finding), while the refined
// ⊤-aware rules and the ⃗×_ω reading stay exact.
//
// Sweeps run on the mrt::par pool with per-sample seed derivation, so every
// table is bit-identical for every MRT_THREADS value.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

using bench::Census;

constexpr int kSamples = 1500;

struct OtCensus {
  Census refined_nd, refined_inc;
  Census literal_nd, literal_inc;
  Census literal_topfree_nd, literal_topfree_inc;
  Census omega_nd, omega_inc;
  long topped_first = 0;

  void merge(const OtCensus& o) {
    refined_nd.merge(o.refined_nd);
    refined_inc.merge(o.refined_inc);
    literal_nd.merge(o.literal_nd);
    literal_inc.merge(o.literal_inc);
    literal_topfree_nd.merge(o.literal_topfree_nd);
    literal_topfree_inc.merge(o.literal_topfree_inc);
    omega_nd.merge(o.omega_nd);
    omega_inc.merge(o.omega_inc);
    topped_first += o.topped_first;
  }
};

OtCensus sweep_ot() {
  return bench::parallel_sweep<OtCensus>(
      0xF16'3'07, kSamples, [](Rng& rng, OtCensus& out) {
        Checker chk;
        OrderTransform s = random_order_transform(rng);
        OrderTransform t = random_order_transform(rng);
        s.props = chk.report(s);
        t.props = chk.report(t);
        const OrderTransform p = lex(s, t);
        const Tri o_nd = chk.prop(p, Prop::ND_L).verdict;
        const Tri o_inc = chk.prop(p, Prop::Inc_L).verdict;

        out.refined_nd.tally(p.props.value(Prop::ND_L), o_nd);
        out.refined_inc.tally(p.props.value(Prop::Inc_L), o_inc);
        out.literal_nd.tally(paper_rule_nd_lex(s.props, t.props), o_nd);
        out.literal_inc.tally(paper_rule_inc_lex(s.props, t.props), o_inc);

        const bool topfree = s.props.value(Prop::HasTop) == Tri::False;
        if (!topfree) ++out.topped_first;
        if (topfree) {
          out.literal_topfree_nd.tally(paper_rule_nd_lex(s.props, t.props),
                                       o_nd);
          if (t.props.value(Prop::HasTop) == Tri::False) {
            out.literal_topfree_inc.tally(
                paper_rule_inc_lex(s.props, t.props), o_inc);
          }
        }

        // The ⃗×_ω reading: collapse S's top; Fig. 3 rules with the Sobrinho
        // conventions (T(S) holds, T ⊤-free for the I rule).
        if (s.ord->has_top() && s.props.value(Prop::TFix_L) == Tri::True) {
          const OrderTransform w = lex_omega(s, t);
          out.omega_nd.tally(paper_rule_nd_lex(s.props, t.props),
                             chk.prop(w, Prop::ND_L).verdict);
          if (t.props.value(Prop::HasTop) == Tri::False) {
            out.omega_inc.tally(paper_rule_inc_lex(s.props, t.props),
                                chk.prop(w, Prop::Inc_L).verdict);
          }
        }
      });
}

Census sweep_st(Prop which) {
  return bench::parallel_sweep<Census>(
      0xF16'3'57, kSamples, [which](Rng& rng, Census& c) {
        Checker chk;
        SemigroupTransform s = random_semigroup_transform(rng);
        SemigroupTransform t = random_semigroup_transform(rng);
        if (!t.add->identity()) return;
        s.props = chk.report(s);
        t.props = chk.report(t);
        const SemigroupTransform p = lex(s, t);
        c.tally(p.props.value(which), chk.prop(p, which).verdict);
      });
}

Census sweep_bs(Prop which) {
  return bench::parallel_sweep<Census>(
      0xF16'3'B5, kSamples, [which](Rng& rng, Census& c) {
        Checker chk;
        Bisemigroup s = random_bisemigroup(rng);
        Bisemigroup t = random_bisemigroup(rng);
        if (!t.add->identity()) return;
        s.props = chk.report(s);
        t.props = chk.report(t);
        const Bisemigroup p = lex(s, t);
        c.tally(p.props.value(which), chk.prop(p, which).verdict);
      });
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("fig3_local_exact", argc, argv);
  const auto ot = sweep_ot();

  bench::banner("EXP-F3: Thm 5 local-optima rules (order transforms)");
  Table t = bench::census_table();
  t.add_row(ot.refined_nd.row("ND refined (top-aware)"));
  t.add_row(ot.refined_inc.row("I refined (top-aware)"));
  t.add_row(ot.literal_nd.row("ND literal Fig.3, plain lex"));
  t.add_row(ot.literal_inc.row("I literal Fig.3, plain lex"));
  t.add_row(ot.literal_topfree_nd.row("ND literal, top-free S"));
  t.add_row(ot.literal_topfree_inc.row("I literal, top-free S&T"));
  t.add_row(ot.omega_nd.row("ND literal under lex_omega"));
  t.add_row(ot.omega_inc.row("I literal under lex_omega (T top-free)"));
  std::cout << t.render();
  std::cout << "samples with a topped first factor: " << ot.topped_first
            << " — exactly where the literal plain-lex rules over-claim.\n";

  bench::banner("EXP-F3: Thm 5 in the algebraic quadrants (exact as stated)");
  Table t2 = bench::census_table();
  t2.add_row(sweep_st(Prop::ND_L).row("ND semigroup transforms"));
  t2.add_row(sweep_st(Prop::Inc_L).row("I  semigroup transforms"));
  t2.add_row(sweep_bs(Prop::ND_L).row("ND bisemigroups"));
  t2.add_row(sweep_bs(Prop::Inc_L).row("I  bisemigroups"));
  std::cout << t2.render();
  report.metric("census_total",
                static_cast<double>(ot.refined_nd.total()));
  return 0;
}
