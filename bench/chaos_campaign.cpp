// EXP-CHAOS — fault-injection campaign over the headline scenarios.
//
// Thousands of seeded (scenario × fault-plan) runs, each scored by the
// differential convergence oracles (stability, extension, reachability,
// global agreement). The verdict table on stdout is bit-identical for every
// MRT_THREADS value — scripts/bench_json.sh diffs a 1-thread run against an
// n-thread run as the determinism gate.
#include "bench_util.hpp"
#include "mrt/chaos/campaign.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

using chaos::CampaignScenario;
using chaos::GlobalCheck;

std::vector<CampaignScenario> headline_scenarios() {
  std::vector<CampaignScenario> out;
  {
    Scenario sc = good_gadget_hops();
    CampaignScenario c;
    c.name = "good_gadget_hops";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    // Hop count's carrier is infinite, so the checker cannot certify M+ND
    // exhaustively — both hold by construction; opt the global oracle in.
    c.global = GlobalCheck::On;
    out.push_back(std::move(c));
  }
  {
    Rng rng(0x6A0);
    Scenario sc = gao_rexford_hierarchy(rng, 10, 4);
    CampaignScenario c;
    c.name = "gao_rexford_hierarchy";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    c.sim.drop_top_routes = true;  // ⊤ = invalid (not exportable)
    c.global = GlobalCheck::Auto;  // finite carrier: checker proves M + ND
    out.push_back(std::move(c));
  }
  {
    Rng rng(0x1C4A);
    Scenario sc = random_scenario(ot_chain_add(6, 1, 3), Value::integer(0),
                                  rng, 8, 6);
    CampaignScenario c;
    c.name = "random_increasing_chain";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    c.sim.drop_top_routes = true;  // the saturated top is "unreachable"
    c.global = GlobalCheck::Auto;
    out.push_back(std::move(c));
  }
  {
    Scenario sc = bad_gadget();
    CampaignScenario c;
    c.name = "bad_gadget";
    c.alg = sc.alg;
    c.net = sc.net;
    c.dest = sc.dest;
    c.origin = sc.origin;
    c.sim.drop_top_routes = true;
    c.sim.max_events = 4000;  // divergence is declared at the cap
    c.expect_convergence = false;
    c.min_divergent = 1;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("chaos_campaign", argc, argv);
  bench::banner("EXP-CHAOS: fault-injection campaign, differential oracles");

  chaos::CampaignConfig cfg;
  cfg.seed = 0xCA05;
  cfg.runs_per_scenario = 250;  // × 4 scenarios ⇒ 1000 runs
  const chaos::CampaignReport rep = chaos::run_campaign(headline_scenarios(),
                                                        cfg);
  std::cout << rep.verdict_table();

  // Fault-free baseline at the same seeds: the gap between these quiescence
  // times and the faulted ones is the reconvergence cost of the fault load.
  std::vector<chaos::CampaignScenario> calm = headline_scenarios();
  for (auto& c : calm) c.faults.max_faults = 0;
  const chaos::CampaignReport base = chaos::run_campaign(calm, cfg);

  long runs = 0, diverged = 0, faults = 0;
  for (std::size_t i = 0; i < rep.scenarios.size(); ++i) {
    const auto& s = rep.scenarios[i];
    const auto& b = base.scenarios[i];
    runs += s.runs;
    diverged += s.diverged;
    faults += s.faults_injected;
    report.metric("oracle_failures." + s.name,
                  static_cast<double>(s.oracle_failures));
    report.metric("mean_convergence_time." + s.name,
                  s.converged > 0
                      ? s.total_finish_time / static_cast<double>(s.converged)
                      : 0.0);
    report.metric("mean_convergence_time_fault_free." + s.name,
                  b.converged > 0
                      ? b.total_finish_time / static_cast<double>(b.converged)
                      : 0.0);
    report.metric("mean_faults_per_run." + s.name,
                  static_cast<double>(s.faults_injected) /
                      static_cast<double>(s.runs > 0 ? s.runs : 1));
  }
  report.metric("runs", static_cast<double>(runs));
  report.metric("diverged", static_cast<double>(diverged));
  report.metric("faults_injected", static_cast<double>(faults));
  report.metric("all_pass", rep.all_pass() ? 1.0 : 0.0);
  return rep.all_pass() ? 0 : 1;
}
