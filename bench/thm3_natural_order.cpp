// EXP-T3 — Theorem 3: the commuting diagram
//     NO^{L,R}(S ⃗× T) = NO^{L,R}(S) ⃗× NO^{L,R}(T)
// measured pointwise over random semilattices, plus the counterexample
// census showing what goes wrong if the fourth case used anything other
// than the identity of T (the paper's "fourth alternative" argument).
#include "bench_util.hpp"
#include "mrt/core/lex.hpp"
#include "mrt/core/translations.hpp"

namespace mrt {
namespace {

// A wrong lex product that puts t1 ⊕ t2 (instead of α_T) in the fourth case.
class WrongLex : public Semigroup {
 public:
  WrongLex(SemigroupPtr s, SemigroupPtr t) : s_(std::move(s)), t_(std::move(t)) {}
  std::string name() const override { return "wrong_lex"; }
  bool contains(const Value& v) const override {
    return v.is_tuple() && v.as_tuple().size() == 2;
  }
  Value op(const Value& a, const Value& b) const override {
    const Value s = s_->op(a.first(), b.first());
    const bool ia = s == a.first();
    const bool ib = s == b.first();
    if (ia && ib) return Value::pair(s, t_->op(a.second(), b.second()));
    if (ia) return Value::pair(s, a.second());
    if (ib) return Value::pair(s, b.second());
    return Value::pair(s, t_->op(a.second(), b.second()));  // the wrong choice
  }
  std::optional<ValueVec> enumerate() const override {
    auto es = s_->enumerate();
    auto et = t_->enumerate();
    ValueVec out;
    for (const Value& x : *es) {
      for (const Value& y : *et) out.push_back(Value::pair(x, y));
    }
    return out;
  }

 private:
  SemigroupPtr s_, t_;
};

// Tally across trials, merged in index order by parallel_sweep.
struct T3Acc {
  long pairs_checked = 0;
  long mismatches = 0;
  long wrong_mismatch_runs = 0;
  void merge(const T3Acc& o) {
    pairs_checked += o.pairs_checked;
    mismatches += o.mismatches;
    wrong_mismatch_runs += o.wrong_mismatch_runs;
  }
};

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;

  const int trials = 200;
  const T3Acc acc = bench::parallel_sweep<T3Acc>(
      0x7013, trials, [](Rng& rng, T3Acc& out) {
        SemigroupPtr s = rng.chance(0.5) ? random_chain_semilattice(rng, 3)
                                         : random_semilattice(rng, 2, true);
        SemigroupPtr t = random_semilattice(rng, 2, true);
        auto product = lex_semigroup(s, t);
        auto wrong = std::make_shared<WrongLex>(s, t);
        const ValueVec elems = *product->enumerate();

        bool wrong_differs = false;
        for (const bool left : {true, false}) {
          auto no_of_product = natural_order(product, left);
          auto product_of_no =
              lex_preorder(natural_order(s, left), natural_order(t, left));
          auto no_of_wrong = natural_order(
              std::static_pointer_cast<const Semigroup>(wrong), left);
          for (const Value& a : elems) {
            for (const Value& b : elems) {
              ++out.pairs_checked;
              if (no_of_product->leq(a, b) != product_of_no->leq(a, b)) {
                ++out.mismatches;
              }
              if (no_of_wrong->leq(a, b) != product_of_no->leq(a, b)) {
                wrong_differs = true;
              }
            }
          }
        }
        out.wrong_mismatch_runs += wrong_differs ? 1 : 0;
      });

  bench::banner("EXP-T3: Theorem 3 — natural orders commute with lex");
  Table t({"construction", "pairs checked", "mismatches vs NO(S) lex NO(T)"});
  t.add_row({"paper's fourth case = alpha_T", std::to_string(acc.pairs_checked),
             std::to_string(acc.mismatches)});
  t.add_row({"wrong fourth case = t1+t2 (runs that differ)",
             std::to_string(trials),
             std::to_string(acc.wrong_mismatch_runs) + "/" +
                 std::to_string(trials)});
  std::cout << t.render();
  std::cout << "Zero mismatches for the paper's definition; the 'fourth\n"
               "alternative' (identity of T) is the unique choice that makes\n"
               "the diagram commute, as section IV.A argues.\n";
  return 0;
}
