// EXP-T6 — Theorem 6: the scoped product S ⊙ T = (S ⃗× left(T)) + (right(S) ⃗× T).
//
//   M(S ⊙ T)  ⟺ M(S) ∧ M(T)          (no side condition — the headline)
//   ND(S ⊙ T) ⟺ I(S) ∧ ND(T)         (⊤-free S, per the measured refinement)
//   I(S ⊙ T)  ⟺ I(S) ∧ I(T)          (⊤-free S and T)
//
// Plus the punchline instance: bandwidth ⊙ delay is monotone although
// bandwidth ⃗× delay is not.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

using bench::Census;

constexpr int kSamples = 1500;

// All four censuses plus the eligibility count, merged across chunks.
struct T6Acc {
  Census m_all, m_engine, nd_topfree, inc_topfree;
  long eligible = 0;
  void merge(const T6Acc& o) {
    m_all.merge(o.m_all);
    m_engine.merge(o.m_engine);
    nd_topfree.merge(o.nd_topfree);
    inc_topfree.merge(o.inc_topfree);
    eligible += o.eligible;
  }
};

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;
  Checker chk;

  const T6Acc acc = bench::parallel_sweep<T6Acc>(
      0x7A06'BE, kSamples, [](Rng& rng, T6Acc& out) {
        Checker chk;
        OrderTransform s = random_order_transform(rng);
        OrderTransform t = random_order_transform(rng);
        const OrderShape ss = probe_shape(*s.ord);
        const OrderShape ts = probe_shape(*t.ord);
        if (ss.multi_element != Tri::True || ts.multi_class != Tri::True) {
          return;  // Theorem 6's hypotheses
        }
        ++out.eligible;
        s.props = chk.report(s);
        t.props = chk.report(t);
        const OrderTransform sc = scoped(s, t);

        const Tri o_m = chk.prop(sc, Prop::M_L).verdict;
        out.m_all.tally(
            tri_and(s.props.value(Prop::M_L), t.props.value(Prop::M_L)), o_m);
        out.m_engine.tally(sc.props.value(Prop::M_L), o_m);

        if (s.props.value(Prop::HasTop) == Tri::False) {
          out.nd_topfree.tally(
              tri_and(s.props.value(Prop::Inc_L), t.props.value(Prop::ND_L)),
              chk.prop(sc, Prop::ND_L).verdict);
          if (t.props.value(Prop::HasTop) == Tri::False) {
            out.inc_topfree.tally(
                tri_and(s.props.value(Prop::Inc_L),
                        t.props.value(Prop::Inc_L)),
                chk.prop(sc, Prop::Inc_L).verdict);
          }
        }
      });

  bench::banner("EXP-T6: Theorem 6 — scoped product characterizations");
  std::cout << "eligible samples (|S| >= 2, T with >= 2 classes): "
            << acc.eligible << "\n";
  Table t = bench::census_table();
  t.add_row(acc.m_all.row("M(S.T) <=> M(S)&M(T)"));
  t.add_row(acc.m_engine.row("engine-derived M (via left/right/union rules)"));
  t.add_row(acc.nd_topfree.row("ND <=> I(S)&ND(T) (top-free S)"));
  t.add_row(acc.inc_topfree.row("I <=> I(S)&I(T) (top-free S,T)"));
  std::cout << t.render();

  bench::banner("EXP-T6: the bandwidth/delay punchline");
  const OrderTransform bw = ot_widest_path(9);
  const OrderTransform sp = ot_shortest_path(9);
  Table p({"algebra", "M derived", "M oracle", "reason"});
  const OrderTransform bad = lex(bw, sp);
  const OrderTransform good = scoped(bw, sp);
  p.add_row({"lex(bw, sp)", to_string(bad.props.value(Prop::M_L)),
             to_string(chk.prop(bad, Prop::M_L).verdict),
             chk.prop(bad, Prop::M_L).detail.substr(0, 48)});
  p.add_row({"scoped(bw, sp)", to_string(good.props.value(Prop::M_L)),
             to_string(chk.prop(good, Prop::M_L).verdict),
             good.props.get(Prop::M_L).why.substr(0, 48)});
  std::cout << p.render();
  return 0;
}
