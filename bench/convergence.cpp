// EXP-CONV — protocol dynamics census.
//
// Increasing algebras converge to local optima under every schedule
// (Sobrinho); the BAD GADGET (not nondecreasing) oscillates; DISAGREE shows
// multiple stable states plus a sustainable oscillation. Also measures
// reconvergence after link failure on the two-level region topology with the
// scoped product.
#include <functional>

#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

struct Tally {
  int runs = 0, converged = 0, stable = 0;
  long max_events_seen = 0;
  double mean_messages = 0;
  double mean_sent = 0;        ///< advertisements enqueued per run
  double mean_withdrawals = 0; ///< withdrawal messages enqueued per run
  double mean_dropped = 0;     ///< messages lost on dead arcs per run
};

Tally run_many(const std::function<Scenario(Rng&)>& make, int runs,
               std::uint64_t seed, long cap) {
  Tally t;
  Rng rng(seed);
  for (int i = 0; i < runs; ++i) {
    Scenario sc = make(rng);
    SimOptions opts;
    opts.seed = seed * 1000 + static_cast<std::uint64_t>(i);
    opts.max_events = cap;
    opts.drop_top_routes = true;
    PathVectorSim sim(sc.alg, sc.net, sc.dest, sc.origin, opts);
    const SimResult res = sim.run();
    ++t.runs;
    t.converged += res.converged ? 1 : 0;
    t.stable += res.converged &&
                        is_locally_optimal(sc.alg, sc.net, sc.dest,
                                           sc.origin, res.routing,
                                           /*drop_top_routes=*/true)
                    ? 1
                    : 0;
    t.max_events_seen = std::max(t.max_events_seen, res.events);
    t.mean_messages += static_cast<double>(res.events);
    t.mean_sent += static_cast<double>(res.stats.messages_sent);
    t.mean_withdrawals += static_cast<double>(res.stats.withdrawals_sent);
    t.mean_dropped += static_cast<double>(res.stats.dropped_dead_arc);
  }
  const double div = t.runs > 0 ? t.runs : 1;
  t.mean_messages /= div;
  t.mean_sent /= div;
  t.mean_withdrawals /= div;
  t.mean_dropped /= div;
  return t;
}

std::vector<std::string> row(const std::string& name, const Tally& t) {
  return {name, std::to_string(t.runs),
          std::to_string(t.converged) + "/" + std::to_string(t.runs),
          std::to_string(t.stable) + "/" + std::to_string(t.converged),
          std::to_string(static_cast<long>(t.mean_messages)),
          std::to_string(static_cast<long>(t.mean_sent)),
          std::to_string(static_cast<long>(t.mean_withdrawals)),
          std::to_string(static_cast<long>(t.mean_dropped))};
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("convergence", argc, argv);
  constexpr int kRuns = 30;
  constexpr long kCap = 30'000;

  bench::banner("EXP-CONV: path-vector protocol dynamics");
  Table t({"scenario", "runs", "converged", "stable when converged",
           "mean msgs", "mean sent", "mean withdrawals", "mean dropped"});

  t.add_row(row("hop count, random nets (I: converges)",
                run_many(
                    [](Rng& rng) {
                      return random_scenario(ot_hop_count(), Value::integer(0),
                                             rng, 12, 8);
                    },
                    kRuns, 0xC0, kCap)));
  t.add_row(row("shortest path, random nets (I: converges)",
                run_many(
                    [](Rng& rng) {
                      return random_scenario(ot_shortest_path(5),
                                             Value::integer(0), rng, 12, 8);
                    },
                    kRuns, 0xC1, kCap)));
  t.add_row(row("widest path, random nets (ND only: still stabilizes)",
                run_many(
                    [](Rng& rng) {
                      return random_scenario(ot_widest_path(5), Value::inf(),
                                             rng, 12, 8);
                    },
                    kRuns, 0xC2, kCap)));
  t.add_row(row("BAD GADGET (not ND: no stable state)",
                run_many([](Rng&) { return bad_gadget(); }, kRuns, 0xC3,
                         kCap)));
  t.add_row(row("DISAGREE (two stable states + trap)",
                run_many([](Rng&) { return disagree(); }, kRuns, 0xC4, kCap)));
  t.add_row(row("Gao-Rexford on valley-free hierarchies (ND only)",
                run_many(
                    [](Rng& rng) {
                      return gao_rexford_hierarchy(rng, 14, 8);
                    },
                    kRuns, 0xC6, kCap)));
  t.add_row(row(
      "scoped(hops, sp) on region topologies",
      run_many(
          [](Rng& rng) {
            const OrderTransform alg = scoped(ot_hop_count(),
                                              ot_shortest_path(5));
            RegionTopology topo = regions_topology(rng, 3, 4, 2);
            ValueVec labels;
            for (int id = 0; id < topo.g.num_arcs(); ++id) {
              if (topo.inter_region(id)) {
                labels.push_back(Value::tagged(
                    1, Value::pair(Value::integer(1),
                                   Value::integer(rng.range(1, 4)))));
              } else {
                labels.push_back(Value::tagged(
                    2, Value::pair(Value::unit(),
                                   Value::integer(rng.range(1, 4)))));
              }
            }
            return Scenario{alg, LabeledGraph(topo.g, std::move(labels)), 0,
                            Value::pair(Value::integer(0), Value::integer(0))};
          },
          kRuns, 0xC5, kCap)));
  std::cout << t.render();

  // Failure / recovery reconvergence on a line topology.
  bench::banner("EXP-CONV: link failure and recovery (shortest path)");
  const OrderTransform sp = ot_shortest_path(5);
  Rng rng(0xFA11);
  int reconverged = 0, still_stable = 0;
  const int runs = 20;
  for (int i = 0; i < runs; ++i) {
    Digraph g = random_connected(rng, 10, 6);
    LabeledGraph net = label_randomly(sp, std::move(g), rng);
    SimOptions opts;
    opts.seed = 0xFA11 + static_cast<std::uint64_t>(i);
    PathVectorSim sim(sp, net, 0, Value::integer(0), opts);
    const int victim = static_cast<int>(rng.below(
        static_cast<std::uint64_t>(net.graph().num_arcs())));
    sim.schedule_link_down(500.0, victim);
    sim.schedule_link_up(1000.0, victim);
    const SimResult res = sim.run();
    reconverged += res.converged ? 1 : 0;
    still_stable += res.converged && is_locally_optimal(sp, net, 0,
                                                        Value::integer(0),
                                                        res.routing)
                        ? 1
                        : 0;
  }
  std::cout << "fail+recover runs: " << runs << ", reconverged: "
            << reconverged << ", stable after recovery: " << still_stable
            << "\n";
  return 0;
}
