// EXP-ADV — certificate validity under adversarial schedules, and the
// scheduler seam's overhead.
//
// Sweep: (algebra × random topology × schedule class × seed) certificate
// runs through mrt::adv::certify. A certificate is VALID when it matches the
// algebra's theory: an exhaustively-increasing algebra must land
// WithinBound (the Daggitt–Griffin n² activation-round ceiling), anything
// else must honestly report Converged or Diverged with no bound claim.
// BoundViolated anywhere is a theorem falsification and fails the bench.
//
// Gates (scripts/bench_json.sh):
//   adv.cert_validity       == 1.0   every certificate matches theory
//   adv.bound_violations    == 0     no falsification
//   adv.overhead_per_event  <= 1.25  adversarial scheduling costs at most
//                                    25% more wall clock per delivered event
//                                    than the default jittered FIFO
#include <chrono>
#include <memory>

#include "bench_util.hpp"
#include "mrt/adv/adv.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/labeled_graph.hpp"
#include "mrt/sim/scenario.hpp"

namespace mrt {
namespace {

struct AlgebraCase {
  std::string name;
  OrderTransform alg;
  ConvergenceProfile profile;
  bool increasing = false;
};

std::vector<AlgebraCase> algebra_pool() {
  std::vector<AlgebraCase> out;
  for (auto& [name, alg] :
       std::vector<std::pair<std::string, OrderTransform>>{
           {"chain_add(6,1,3)", ot_chain_add(6, 1, 3)},
           {"chain_add(9,1,2)", ot_chain_add(9, 1, 2)},
           {"gao_rexford", gao_rexford_algebra()},
           {"gadget", gadget_algebra()}}) {
    AlgebraCase c;
    c.name = name;
    c.profile = convergence_profile(alg);
    c.increasing = c.profile.increasing == Tri::True && c.profile.exhaustive;
    c.alg = std::move(alg);
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<adv::ScheduleSpec> schedule_pool(std::uint64_t seed) {
  std::vector<adv::ScheduleSpec> out;
  out.push_back({});  // the default jittered FIFO
  for (adv::ScheduleSpec& s : adv::builtin_adversaries(seed))
    out.push_back(std::move(s));
  return out;
}

// Per-(algebra × schedule) cell of the validity census.
struct Cell {
  long runs = 0;
  long within_bound = 0;
  long converged_na = 0;  // converged, bound not applicable
  long diverged = 0;
  long bound_violated = 0;
  long invalid = 0;  // certificate contradicted the algebra's theory
  long max_rounds = 0;
  long stale = 0;

  void merge(const Cell& o) {
    runs += o.runs;
    within_bound += o.within_bound;
    converged_na += o.converged_na;
    diverged += o.diverged;
    bound_violated += o.bound_violated;
    invalid += o.invalid;
    max_rounds = std::max(max_rounds, o.max_rounds);
    stale += o.stale;
  }
};

struct Acc {
  // Indexed [algebra][schedule]; sized lazily on first tally.
  std::vector<std::vector<Cell>> cells;

  Cell& at(std::size_t a, std::size_t s, std::size_t na, std::size_t ns) {
    if (cells.empty()) cells.assign(na, std::vector<Cell>(ns));
    return cells[a][s];
  }
  void merge(const Acc& o) {
    if (o.cells.empty()) return;
    if (cells.empty()) {
      cells = o.cells;
      return;
    }
    for (std::size_t a = 0; a < cells.size(); ++a)
      for (std::size_t s = 0; s < cells[a].size(); ++s)
        cells[a][s].merge(o.cells[a][s]);
  }
};

// Wall-clock of one sim run under `spec` (certificate construction and
// algebra checking excluded — this times the seam itself).
double timed_run(const OrderTransform& alg, const LabeledGraph& net, int dest,
                 const Value& origin, const adv::ScheduleSpec& spec,
                 const SimOptions& opts, long* events) {
  const std::unique_ptr<Scheduler> sched = adv::make_scheduler(spec);
  PathVectorSim sim(alg, net, dest, origin, opts);
  sim.set_scheduler(sched.get());
  const auto t0 = std::chrono::steady_clock::now();
  const SimResult res = sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  *events += res.events;
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("adv_schedules", argc, argv);
  bench::banner("EXP-ADV: convergence certificates under schedule adversaries");

  const std::vector<AlgebraCase> algs = algebra_pool();
  const std::vector<adv::ScheduleSpec> scheds = schedule_pool(0x5EED);
  const int kRuns = 400;  // triples: 4 algebras × 5 schedules × 20 seeds

  const Acc acc = bench::parallel_sweep<Acc>(0xADBE7C, kRuns, [&](Rng& rng,
                                                                  Acc& a) {
    const std::size_t ai = rng.below(algs.size());
    const std::size_t si = rng.below(scheds.size());
    const AlgebraCase& ac = algs[ai];

    const int nodes = 4 + static_cast<int>(rng.below(6));
    const int extra = 2 + static_cast<int>(rng.below(6));
    const LabeledGraph net =
        label_randomly(ac.alg, random_connected(rng, nodes, extra), rng);
    const int dest = static_cast<int>(rng.below(static_cast<std::uint64_t>(nodes)));

    adv::ScheduleSpec spec = scheds[si];
    spec.seed = rng.next();
    SimOptions opts;
    opts.seed = rng.next();
    opts.max_events = 20'000;

    const adv::ConvergenceCertificate cert = adv::certify(
        ac.alg, net, dest, Value::integer(0), spec, opts, &ac.profile);

    Cell& cell = a.at(ai, si, algs.size(), scheds.size());
    ++cell.runs;
    cell.max_rounds = std::max(cell.max_rounds, cert.rounds);
    cell.stale += cert.stale_discarded;
    switch (cert.verdict) {
      case adv::Verdict::WithinBound: ++cell.within_bound; break;
      case adv::Verdict::BoundViolated: ++cell.bound_violated; break;
      case adv::Verdict::Converged: ++cell.converged_na; break;
      case adv::Verdict::Diverged: ++cell.diverged; break;
    }
    const bool valid =
        ac.increasing ? cert.verdict == adv::Verdict::WithinBound
                      : (cert.verdict == adv::Verdict::Converged ||
                         cert.verdict == adv::Verdict::Diverged);
    if (!valid) ++cell.invalid;
  });

  Table table({"algebra", "schedule", "runs", "within_bound", "converged",
               "diverged", "VIOLATED", "INVALID", "max_rounds", "stale"});
  long runs = 0, violations = 0, invalid = 0;
  for (std::size_t a = 0; a < algs.size(); ++a) {
    for (std::size_t s = 0; s < scheds.size(); ++s) {
      const Cell& c = acc.cells[a][s];
      runs += c.runs;
      violations += c.bound_violated;
      invalid += c.invalid;
      table.add_row({algs[a].name, to_string(scheds[s].kind),
                     std::to_string(c.runs), std::to_string(c.within_bound),
                     std::to_string(c.converged_na), std::to_string(c.diverged),
                     std::to_string(c.bound_violated), std::to_string(c.invalid),
                     std::to_string(c.max_rounds), std::to_string(c.stale)});
    }
  }
  std::cout << table;

  // Seam overhead: the same (topology, seed) workload once per schedule
  // class, per-delivered-event normalized (adversaries change event counts,
  // so raw wall clock is not comparable).
  Rng orng(0x0EAD);
  const LabeledGraph onet = label_randomly(
      ot_chain_add(6, 1, 3), random_connected(orng, 24, 20), orng);
  double fifo_wall = 0.0, adv_wall = 0.0;
  long fifo_events = 0, adv_events = 0;
  const adv::ScheduleSpec fifo_spec;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    SimOptions opts;
    opts.seed = seed;
    fifo_wall += timed_run(ot_chain_add(6, 1, 3), onet, 0, Value::integer(0),
                           fifo_spec, opts, &fifo_events);
    for (const adv::ScheduleSpec& s : adv::builtin_adversaries(seed)) {
      adv_wall += timed_run(ot_chain_add(6, 1, 3), onet, 0, Value::integer(0),
                            s, opts, &adv_events);
    }
  }
  const double fifo_per_event = fifo_wall / static_cast<double>(fifo_events);
  const double adv_per_event = adv_wall / static_cast<double>(adv_events);
  const double overhead = adv_per_event / fifo_per_event;
  std::cout << "\nseam overhead: fifo " << fifo_events << " events in "
            << fifo_wall << "s, adversaries " << adv_events << " events in "
            << adv_wall << "s -> " << overhead << "x per event\n";

  const double validity =
      runs > 0 ? 1.0 - static_cast<double>(invalid) / static_cast<double>(runs)
               : 0.0;
  report.metric("adv.runs", static_cast<double>(runs));
  report.metric("adv.cert_validity", validity);
  report.metric("adv.bound_violations", static_cast<double>(violations));
  report.metric("adv.overhead_per_event", overhead);
  report.metric("adv.fifo_events", static_cast<double>(fifo_events));
  report.metric("adv.adv_events", static_cast<double>(adv_events));
  return violations == 0 && invalid == 0 ? 0 : 1;
}
