// EXP-PERF — the ablation the metalanguage design rests on: deriving the
// properties of a composite algebra by rule is orders of magnitude cheaper
// than brute-force checking it, and the gap widens with carrier size.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "mrt/core/checker.hpp"
#include "mrt/core/combinators.hpp"
#include "mrt/core/inference.hpp"
#include "mrt/core/random_algebra.hpp"

namespace mrt {
namespace {

std::pair<OrderTransform, OrderTransform> components(int n) {
  Rng rng(0xAB1A + static_cast<std::uint64_t>(n));
  RandomConfig cfg;
  cfg.min_elems = n;
  cfg.max_elems = n;
  cfg.min_fns = 3;
  cfg.max_fns = 3;
  OrderTransform s = random_order_transform(rng, cfg);
  OrderTransform t = random_order_transform(rng, cfg);
  Checker chk;
  s.props = chk.report(s);
  t.props = chk.report(t);
  return {std::move(s), std::move(t)};
}

void BM_InferLexProperties(benchmark::State& state) {
  auto [s, t] = components(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    PropertyReport r = infer_lex(StructureKind::OrderTransform, s.props,
                                 t.props);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InferLexProperties)->Arg(3)->Arg(5)->Arg(8);

void BM_BruteForceLexProperties(benchmark::State& state) {
  auto [s, t] = components(static_cast<int>(state.range(0)));
  const OrderTransform p = lex(s, t);
  Checker chk;
  for (auto _ : state) {
    PropertyReport r = chk.report(p);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_BruteForceLexProperties)->Arg(3)->Arg(5)->Arg(8);

void BM_CheckerSingleProp(benchmark::State& state) {
  auto [s, t] = components(static_cast<int>(state.range(0)));
  const OrderTransform p = lex(s, t);
  Checker chk;
  for (auto _ : state) {
    CheckResult r = chk.prop(p, Prop::M_L);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_CheckerSingleProp)->Arg(3)->Arg(5)->Arg(8);

void BM_ScopedConstruction(benchmark::State& state) {
  auto [s, t] = components(4);
  for (auto _ : state) {
    OrderTransform sc = scoped(s, t);
    benchmark::DoNotOptimize(sc);
  }
}
BENCHMARK(BM_ScopedConstruction);

}  // namespace
}  // namespace mrt

// Hand-rolled BENCHMARK_MAIN(): see perf_routing.cpp — strips --json before
// google-benchmark sees it and dumps the obs registry on exit.
int main(int argc, char** argv) {
  mrt::bench::JsonReport report("perf_inference", argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
