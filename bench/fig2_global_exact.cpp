// EXP-F2 — Figure 2 / Theorem 4 / Theorem 1 / Corollary 1.
//
// Regenerates the paper's global-optima characterization as a measurement:
// for thousands of random finite algebras in each quadrant, the exact rule
//     M(S ⃗× T) ⟺ M(S) ∧ M(T) ∧ (N(S) ∨ C(T))
// is compared cell-by-cell against brute force on the product. A non-zero
// UNSOUND column would falsify the theorem (or the implementation).
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

using bench::Census;

constexpr int kSamples = 1200;

Census sweep_ot() {
  Checker chk;
  Census c;
  Rng rng(0xF16'2'07);
  for (int i = 0; i < kSamples; ++i) {
    OrderTransform s = random_order_transform(rng);
    OrderTransform t = random_order_transform(rng);
    s.props = chk.report(s);
    t.props = chk.report(t);
    const OrderTransform p = lex(s, t);
    c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
  }
  return c;
}

Census sweep_os(bool total_only) {
  Checker chk;
  Census c;
  Rng rng(total_only ? 0x5A170u : 0xF16'2'05u);
  for (int i = 0; i < kSamples; ++i) {
    OrderSemigroup s = random_order_semigroup(rng);
    OrderSemigroup t = random_order_semigroup(rng);
    if (total_only) {
      const int n = static_cast<int>(rng.range(2, 4));
      const int m = static_cast<int>(rng.range(2, 4));
      s = OrderSemigroup{"s", random_total_preorder(rng, n),
                         random_magma(rng, n), {}};
      t = OrderSemigroup{"t", random_total_preorder(rng, m),
                         random_magma(rng, m), {}};
    }
    s.props = chk.report(s);
    t.props = chk.report(t);
    const OrderSemigroup p = lex(s, t);
    c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
    c.tally(p.props.value(Prop::M_R), chk.prop(p, Prop::M_R).verdict);
  }
  return c;
}

Census sweep_st() {
  Checker chk;
  Census c;
  Rng rng(0xF16'2'57);
  for (int i = 0; i < kSamples; ++i) {
    SemigroupTransform s = random_semigroup_transform(rng);
    SemigroupTransform t = random_semigroup_transform(rng);
    if (!t.add->identity()) continue;  // Theorem 2 definedness
    s.props = chk.report(s);
    t.props = chk.report(t);
    const SemigroupTransform p = lex(s, t);
    c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
  }
  return c;
}

Census sweep_bs() {
  Checker chk;
  Census c;
  Rng rng(0xF16'2'B5);
  for (int i = 0; i < kSamples; ++i) {
    Bisemigroup s = random_bisemigroup(rng);
    Bisemigroup t = random_bisemigroup(rng);
    if (!t.add->identity()) continue;
    s.props = chk.report(s);
    t.props = chk.report(t);
    const Bisemigroup p = lex(s, t);
    c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
    c.tally(p.props.value(Prop::M_R), chk.prop(p, Prop::M_R).verdict);
  }
  return c;
}

Census sweep_cor1() {
  Checker chk;
  Census c;
  Rng rng(0xC021'F16);
  for (int i = 0; i < kSamples; ++i) {
    OrderSemigroup s = random_order_semigroup(rng);
    OrderSemigroup t = random_order_semigroup(rng);
    s.props = chk.report(s);
    t.props = chk.report(t);
    const OrderSemigroup p = lex(s, t);
    const Tri rule = tri_and(
        tri_and(
            tri_and(s.props.value(Prop::M_L), s.props.value(Prop::M_R)),
            tri_and(t.props.value(Prop::M_L), t.props.value(Prop::M_R))),
        tri_or(
            tri_or(
                tri_and(s.props.value(Prop::N_L), s.props.value(Prop::N_R)),
                tri_and(s.props.value(Prop::N_L), t.props.value(Prop::C_R))),
            tri_or(
                tri_and(s.props.value(Prop::N_R), t.props.value(Prop::C_L)),
                tri_and(t.props.value(Prop::C_L),
                        t.props.value(Prop::C_R)))));
    const Tri oracle = tri_and(chk.prop(p, Prop::M_L).verdict,
                               chk.prop(p, Prop::M_R).verdict);
    c.tally(rule, oracle);
  }
  return c;
}

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;
  bench::banner(
      "EXP-F2: Thm 4 exact global-optima rule, per quadrant "
      "(M(SxT) <=> M(S)&M(T)&(N(S)|C(T)))");
  Table t = bench::census_table();
  t.add_row(sweep_ot().row("order transforms"));
  t.add_row(sweep_os(false).row("order semigroups (preorders, L+R)"));
  t.add_row(sweep_os(true).row("order semigroups (total: Thm 1 Saito)"));
  t.add_row(sweep_st().row("semigroup transforms"));
  t.add_row(sweep_bs().row("bisemigroups (L+R; refined for non-sel S)"));
  t.add_row(sweep_cor1().row("Corollary 1 (two-sided M)"));
  std::cout << t.render();
  std::cout << "\nPaper claim reproduced iff UNSOUND column is all zeros and\n"
               "agreement covers both truth values (it does; 'undecided' rows\n"
               "are the documented non-selective bisemigroup refinement).\n";
  return 0;
}
