// EXP-F2 — Figure 2 / Theorem 4 / Theorem 1 / Corollary 1.
//
// Regenerates the paper's global-optima characterization as a measurement:
// for thousands of random finite algebras in each quadrant, the exact rule
//     M(S ⃗× T) ⟺ M(S) ∧ M(T) ∧ (N(S) ∨ C(T))
// is compared cell-by-cell against brute force on the product. A non-zero
// UNSOUND column would falsify the theorem (or the implementation).
//
// The census runs on the mrt::par pool: every sample draws its own Rng from
// (sweep seed, sample index), so the tables are bit-identical for every
// MRT_THREADS value (scripts/bench_json.sh diffs them as a check).
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"

namespace mrt {
namespace {

using bench::Census;

constexpr int kSamples = 1200;

Census sweep_ot() {
  return bench::parallel_sweep<Census>(
      0xF16'2'07, kSamples, [](Rng& rng, Census& c) {
        Checker chk;
        OrderTransform s = random_order_transform(rng);
        OrderTransform t = random_order_transform(rng);
        s.props = chk.report(s);
        t.props = chk.report(t);
        const OrderTransform p = lex(s, t);
        c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
      });
}

Census sweep_os(bool total_only) {
  return bench::parallel_sweep<Census>(
      total_only ? 0x5A170u : 0xF16'2'05u, kSamples,
      [total_only](Rng& rng, Census& c) {
        Checker chk;
        OrderSemigroup s = random_order_semigroup(rng);
        OrderSemigroup t = random_order_semigroup(rng);
        if (total_only) {
          const int n = static_cast<int>(rng.range(2, 4));
          const int m = static_cast<int>(rng.range(2, 4));
          s = OrderSemigroup{"s", random_total_preorder(rng, n),
                             random_magma(rng, n), {}};
          t = OrderSemigroup{"t", random_total_preorder(rng, m),
                             random_magma(rng, m), {}};
        }
        s.props = chk.report(s);
        t.props = chk.report(t);
        const OrderSemigroup p = lex(s, t);
        c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
        c.tally(p.props.value(Prop::M_R), chk.prop(p, Prop::M_R).verdict);
      });
}

Census sweep_st() {
  return bench::parallel_sweep<Census>(
      0xF16'2'57, kSamples, [](Rng& rng, Census& c) {
        Checker chk;
        SemigroupTransform s = random_semigroup_transform(rng);
        SemigroupTransform t = random_semigroup_transform(rng);
        if (!t.add->identity()) return;  // Theorem 2 definedness
        s.props = chk.report(s);
        t.props = chk.report(t);
        const SemigroupTransform p = lex(s, t);
        c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
      });
}

Census sweep_bs() {
  return bench::parallel_sweep<Census>(
      0xF16'2'B5, kSamples, [](Rng& rng, Census& c) {
        Checker chk;
        Bisemigroup s = random_bisemigroup(rng);
        Bisemigroup t = random_bisemigroup(rng);
        if (!t.add->identity()) return;
        s.props = chk.report(s);
        t.props = chk.report(t);
        const Bisemigroup p = lex(s, t);
        c.tally(p.props.value(Prop::M_L), chk.prop(p, Prop::M_L).verdict);
        c.tally(p.props.value(Prop::M_R), chk.prop(p, Prop::M_R).verdict);
      });
}

Census sweep_cor1() {
  return bench::parallel_sweep<Census>(
      0xC021'F16, kSamples, [](Rng& rng, Census& c) {
        Checker chk;
        OrderSemigroup s = random_order_semigroup(rng);
        OrderSemigroup t = random_order_semigroup(rng);
        s.props = chk.report(s);
        t.props = chk.report(t);
        const OrderSemigroup p = lex(s, t);
        const Tri rule = tri_and(
            tri_and(
                tri_and(s.props.value(Prop::M_L), s.props.value(Prop::M_R)),
                tri_and(t.props.value(Prop::M_L), t.props.value(Prop::M_R))),
            tri_or(
                tri_or(
                    tri_and(s.props.value(Prop::N_L),
                            s.props.value(Prop::N_R)),
                    tri_and(s.props.value(Prop::N_L),
                            t.props.value(Prop::C_R))),
                tri_or(
                    tri_and(s.props.value(Prop::N_R),
                            t.props.value(Prop::C_L)),
                    tri_and(t.props.value(Prop::C_L),
                            t.props.value(Prop::C_R)))));
        const Tri oracle = tri_and(chk.prop(p, Prop::M_L).verdict,
                                   chk.prop(p, Prop::M_R).verdict);
        c.tally(rule, oracle);
      });
}

}  // namespace
}  // namespace mrt

int main(int argc, char** argv) {
  using namespace mrt;
  bench::JsonReport report("fig2_global_exact", argc, argv);
  bench::banner(
      "EXP-F2: Thm 4 exact global-optima rule, per quadrant "
      "(M(SxT) <=> M(S)&M(T)&(N(S)|C(T)))");
  Table t = bench::census_table();
  long total = 0;
  for (auto&& [c, label] :
       {std::pair{sweep_ot(), "order transforms"},
        std::pair{sweep_os(false), "order semigroups (preorders, L+R)"},
        std::pair{sweep_os(true), "order semigroups (total: Thm 1 Saito)"},
        std::pair{sweep_st(), "semigroup transforms"},
        std::pair{sweep_bs(), "bisemigroups (L+R; refined for non-sel S)"},
        std::pair{sweep_cor1(), "Corollary 1 (two-sided M)"}}) {
    t.add_row(c.row(label));
    total += c.total();
  }
  report.metric("census_total", static_cast<double>(total));
  std::cout << t.render();
  std::cout << "\nPaper claim reproduced iff UNSOUND column is all zeros and\n"
               "agreement covers both truth values (it does; 'undecided' rows\n"
               "are the documented non-selective bisemigroup refinement).\n";
  return 0;
}
