// EXP-F1 — Figure 1: the quadrants model of algebraic routing.
//
// Instantiates the canonical example in every quadrant, prints its derived
// property summary, and verifies that the translation maps (Cayley, NO^L/R,
// min-set) connect the quadrants as section III describes.
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/core/translations.hpp"

int main() {
  using namespace mrt;
  Checker chk;

  bench::banner("EXP-F1: the quadrants model (Fig. 1)");
  Table t({"quadrant", "structure", "example", "M", "N", "C", "ND", "I"});
  auto row = [&](const char* quadrant, const char* structure,
                 const std::string& name, const PropertyReport& r) {
    t.add_row({quadrant, structure, name, to_string(r.value(Prop::M_L)),
               to_string(r.value(Prop::N_L)), to_string(r.value(Prop::C_L)),
               to_string(r.value(Prop::ND_L)),
               to_string(r.value(Prop::Inc_L))});
  };

  const Bisemigroup bs = bs_shortest_path();
  const Bisemigroup bs2 = bs_widest_path();
  const Bisemigroup bs3 = bs_path_count();
  row("alg x alg", "bisemigroup", bs.name, bs.props);
  row("alg x alg", "bisemigroup", bs2.name, bs2.props);
  row("alg x alg", "bisemigroup", bs3.name, bs3.props);

  const OrderSemigroup os = os_shortest_path();
  const OrderSemigroup os2 = os_widest_path();
  const OrderSemigroup os3 = os_reliability();
  row("alg x ord", "order semigroup", os.name, os.props);
  row("alg x ord", "order semigroup", os2.name, os2.props);
  row("alg x ord", "order semigroup", os3.name, os3.props);

  const SemigroupTransform st = st_shortest_path(9);
  row("fn  x alg", "semigroup transform", st.name, st.props);

  const OrderTransform ot = ot_shortest_path(9);
  const OrderTransform ot2 = ot_widest_path(9);
  const OrderTransform ot3 = ot_reliability();
  row("fn  x ord", "order transform", ot.name, ot.props);
  row("fn  x ord", "order transform", ot2.name, ot2.props);
  row("fn  x ord", "order transform", ot3.name, ot3.props);
  std::cout << t.render();

  bench::banner("Translation maps (section III)");
  Table m({"map", "from", "to", "checker contradicts carried props?"});
  auto translated = [&](const char* map, const auto& from, const auto& to) {
    int contradictions = 0;
    for (Prop p : props_for(to.kind)) {
      const Tri carried = to.props.value(p);
      if (carried == Tri::Unknown) continue;
      const Tri oracle = chk.prop(to, p).verdict;
      if (oracle != Tri::Unknown && oracle != carried) ++contradictions;
    }
    m.add_row({map, from.name, to.name,
               contradictions == 0 ? "no" : std::to_string(contradictions)});
  };
  translated("cayley", bs, cayley(bs));
  translated("cayley", os2, cayley(os2));
  translated("NO^L", bs, natural_order_left(bs));
  translated("NO^R", st, natural_order_right(st));
  translated("minset", ot2, min_set_transform(ot2));
  std::cout << m.render();

  // Sampled spot check that NO^L(ℕ, min, +) really is (ℕ, ≤, +).
  auto no = natural_order(sg_min(false), true);
  auto leq = ord_nat_leq(false);
  Rng rng(4);
  long agree = 0;
  const ValueVec xs = no->sample(rng, 500);
  const ValueVec ys = no->sample(rng, 500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    agree += no->leq(xs[i], ys[i]) == leq->leq(xs[i], ys[i]) ? 1 : 0;
  }
  std::cout << "\nNO^L(N, min) equals numeric <= on " << agree
            << "/500 sampled pairs\n";
  return 0;
}
