// EXP-BD — the running example as a routing measurement.
//
// Sweeps random networks and reports, per algebra:
//   * how often generalized Dijkstra's answer is globally optimal
//     (validated against exhaustive path enumeration), and
//   * how often the asynchronous path-vector protocol converges and lands
//     in a locally optimal (stable) state.
// Shape to reproduce: delay-first lex and both scoped nestings solve
// globally at every node; bandwidth-first lex exhibits anomalies; all of
// them remain locally optimal/stable (ND holds where needed).
#include "bench_util.hpp"
#include "mrt/core/bases.hpp"
#include "mrt/graph/generators.hpp"
#include "mrt/routing/dijkstra.hpp"
#include "mrt/routing/optimality.hpp"
#include "mrt/sim/path_vector.hpp"

namespace mrt {
namespace {

struct Outcome {
  long nodes = 0;
  long globally_optimal = 0;
  long sims = 0;
  long converged = 0;
  long stable = 0;
};

Outcome measure(const OrderTransform& alg, const Value& origin, int trials,
                std::uint64_t seed) {
  Rng rng(seed);
  Outcome out;
  for (int i = 0; i < trials; ++i) {
    Digraph g = random_connected(rng, 8, 5);
    LabeledGraph net = label_randomly(alg, std::move(g), rng);
    const Routing r = dijkstra(alg, net, 0, origin);
    for (int v = 1; v < net.num_nodes(); ++v) {
      if (!r.has_route(v)) continue;
      ++out.nodes;
      out.globally_optimal +=
          is_globally_optimal(alg, net, v, 0, origin, *r.weight[v]) ? 1 : 0;
    }
    SimOptions opts;
    opts.seed = seed + static_cast<std::uint64_t>(i);
    opts.max_events = 50'000;
    opts.drop_top_routes = true;
    PathVectorSim sim(alg, net, 0, origin, opts);
    const SimResult res = sim.run();
    ++out.sims;
    out.converged += res.converged ? 1 : 0;
    out.stable += res.converged &&
                          is_locally_optimal(alg, net, 0, origin, res.routing)
                      ? 1
                      : 0;
  }
  return out;
}

std::string frac(long a, long b) {
  return std::to_string(a) + "/" + std::to_string(b);
}

}  // namespace
}  // namespace mrt

int main() {
  using namespace mrt;
  const OrderTransform bw = ot_widest_path(6);
  const OrderTransform sp = ot_shortest_path(6);
  const Value o_sp_bw = Value::pair(Value::integer(0), Value::inf());
  const Value o_bw_sp = Value::pair(Value::inf(), Value::integer(0));

  constexpr int kTrials = 40;
  struct Case {
    std::string name;
    OrderTransform alg;
    Value origin;
    const char* m;
  };
  std::vector<Case> cases;
  cases.push_back({"lex(sp, bw)  [M yes]", lex(sp, bw), o_sp_bw, "yes"});
  cases.push_back({"lex(bw, sp)  [M no]", lex(bw, sp), o_bw_sp, "no"});
  cases.push_back({"scoped(sp, bw)", scoped(sp, bw), o_sp_bw, "yes"});
  cases.push_back({"scoped(bw, sp)", scoped(bw, sp), o_bw_sp, "yes"});

  bench::banner("EXP-BD: bandwidth/delay — derived properties drive outcomes");
  Table t({"algebra", "M derived", "Dijkstra globally optimal",
           "sims converged", "stable (local optimum)"});
  for (auto& c : cases) {
    // Scoped labels are tagged; Dijkstra/sim use the same label family via
    // label_randomly, so every case is solved uniformly.
    const Outcome o = measure(c.alg, c.origin, kTrials, 0xBD00);
    t.add_row({c.name, to_string(c.alg.props.value(Prop::M_L)),
               frac(o.globally_optimal, o.nodes), frac(o.converged, o.sims),
               frac(o.stable, o.sims)});
  }
  std::cout << t.render();
  std::cout << "Reproduced shape: every algebra with derived M = yes solves\n"
               "globally at 100% of nodes; lex(bw, sp) falls short of 100%\n"
               "exactly as ¬M predicts, while remaining stable (ND).\n";
  return 0;
}
